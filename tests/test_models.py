"""Tests for the NeuroSelect model family (Eqs. 3-10) and baselines."""

import numpy as np
import pytest

from repro.cnf import CNF, random_ksat
from repro.graph import BipartiteGraph, LiteralClauseGraph
from repro.models import (
    GINClassifier,
    HGTLayer,
    LinearAttention,
    MPNNStack,
    NeuroSATClassifier,
    NeuroSelect,
    neuroselect_without_attention,
)
from repro.models.mpnn import BipartiteMPNNLayer
from repro.models.readout import max_readout, mean_max_readout, mean_readout
from repro.nn import Adam, Tensor, bce_with_logits

RNG = np.random.default_rng(0)


def small_graph():
    return BipartiteGraph(random_ksat(8, 20, seed=1))


class TestMPNN:
    def test_shapes_preserved(self):
        g = small_graph()
        layer = BipartiteMPNNLayer(dim=6, rng=RNG)
        var_x = Tensor(g.initial_var_features(6))
        clause_x = Tensor(g.initial_clause_features(6))
        new_var, new_clause = layer(var_x, clause_x, g)
        assert new_var.shape == (8, 6)
        assert new_clause.shape == (20, 6)

    def test_stack_depth(self):
        g = small_graph()
        stack = MPNNStack(dim=4, num_layers=3, rng=RNG)
        assert len(stack.layers) == 3
        var_x, clause_x = stack(
            Tensor(g.initial_var_features(4)), Tensor(g.initial_clause_features(4)), g
        )
        assert var_x.shape == (8, 4)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            MPNNStack(dim=4, num_layers=0)

    def test_polarity_matters(self):
        """Flipping every literal's sign must change the embeddings."""
        base = CNF([[1, 2, 3], [-1, 2, -3], [2, -3, 1]])
        flipped = CNF([[-l for l in c.literals] for c in base.clauses])
        layer = BipartiteMPNNLayer(dim=4, rng=np.random.default_rng(5))
        outs = []
        for cnf in (base, flipped):
            g = BipartiteGraph(cnf)
            v, _ = layer(
                Tensor(g.initial_var_features(4)),
                Tensor(g.initial_clause_features(4)),
                g,
            )
            outs.append(v.data)
        assert not np.allclose(outs[0], outs[1])

    def test_gradients_reach_all_parameters(self):
        g = small_graph()
        layer = BipartiteMPNNLayer(dim=4, rng=RNG)
        var_x = Tensor(g.initial_var_features(4))
        clause_x = Tensor(g.initial_clause_features(4))
        new_var, new_clause = layer(var_x, clause_x, g)
        (new_var.sum() + new_clause.sum()).backward()
        assert all(p.grad is not None for p in layer.parameters())


class TestLinearAttention:
    def test_shape(self):
        attn = LinearAttention(dim=5, rng=RNG)
        out = attn(Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 5)

    def test_matches_explicit_dense_formula(self):
        """Eq. (9) computed naively with an N x N matrix must agree."""
        dim, n = 4, 6
        attn = LinearAttention(dim=dim, rng=np.random.default_rng(3))
        z = RNG.normal(size=(n, dim))
        out = attn(Tensor(z)).data

        q = z @ attn.f_q.weight.data + attn.f_q.bias.data
        k = z @ attn.f_k.weight.data + attn.f_k.bias.data
        v = z @ attn.f_v.weight.data + attn.f_v.bias.data
        qt = q / np.sqrt((q * q).sum() + attn.eps)
        kt = k / np.sqrt((k * k).sum() + attn.eps)
        # Dense: D^{-1} [V + (1/N) Qt Kt^T V] with explicit N x N product.
        big = qt @ kt.T  # N x N attention matrix
        d = 1.0 + big.sum(axis=1) / n
        expected = (v + big @ v / n) / d[:, None]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_linear_cost_no_quadratic_matrix(self):
        """Smoke: scales to thousands of nodes quickly (linear memory)."""
        attn = LinearAttention(dim=8, rng=RNG)
        out = attn(Tensor(RNG.normal(size=(20_000, 8))))
        assert out.shape == (20_000, 8)

    def test_gradients_flow(self):
        attn = LinearAttention(dim=3, rng=RNG)
        z = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        attn(z).sum().backward()
        assert z.grad is not None
        assert all(p.grad is not None for p in attn.parameters())


class TestHGTLayer:
    def test_attention_toggle(self):
        g = small_graph()
        with_attn = HGTLayer(dim=4, use_attention=True, rng=np.random.default_rng(1))
        without = HGTLayer(dim=4, use_attention=False, rng=np.random.default_rng(1))
        var_x = Tensor(g.initial_var_features(4))
        clause_x = Tensor(g.initial_clause_features(4))
        v1, _ = with_attn(var_x, clause_x, g)
        v2, _ = without(var_x, clause_x, g)
        assert not np.allclose(v1.data, v2.data)
        assert without.attention is None

    def test_clause_features_bypass_attention(self):
        g = small_graph()
        layer = HGTLayer(dim=4, rng=RNG)
        var_x = Tensor(g.initial_var_features(4))
        clause_x = Tensor(g.initial_clause_features(4))
        _, c_out = layer(var_x, clause_x, g)
        _, c_mpnn = layer.mpnn(var_x, clause_x, g)
        np.testing.assert_allclose(c_out.data, c_mpnn.data)


class TestReadouts:
    def test_mean(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(mean_readout(x).data, [[2.0, 3.0]])

    def test_max(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 4.0]]))
        np.testing.assert_allclose(max_readout(x).data, [[3.0, 5.0]])

    def test_mean_max(self):
        x = Tensor(np.array([[2.0], [4.0]]))
        np.testing.assert_allclose(mean_max_readout(x).data, [[7.0]])


class TestNeuroSelect:
    def test_forward_shape_and_probability(self):
        model = NeuroSelect(hidden_dim=8, seed=0)
        cnf = random_ksat(10, 30, seed=2)
        logit = model(BipartiteGraph(cnf))
        assert logit.shape == (1, 1)
        p = model.predict_proba(cnf)
        assert 0.0 <= p <= 1.0
        assert model.predict(cnf) in (0, 1)

    def test_accepts_cnf_or_graph(self):
        model = NeuroSelect(hidden_dim=8, seed=0)
        cnf = random_ksat(10, 30, seed=2)
        assert model.predict_proba(cnf) == pytest.approx(
            model.predict_proba(BipartiteGraph(cnf))
        )

    def test_paper_defaults(self):
        model = NeuroSelect()
        assert model.hidden_dim == 32
        assert len(model.hgt_layers) == 2
        assert len(model.hgt_layers[0].mpnn.layers) == 3

    def test_deterministic_by_seed(self):
        a = NeuroSelect(hidden_dim=8, seed=4)
        b = NeuroSelect(hidden_dim=8, seed=4)
        cnf = random_ksat(10, 30, seed=2)
        assert a.predict_proba(cnf) == b.predict_proba(cnf)

    def test_invalid_readout_rejected(self):
        with pytest.raises(ValueError):
            NeuroSelect(readout="bogus")

    def test_ablation_has_no_attention(self):
        model = neuroselect_without_attention(hidden_dim=8)
        assert all(layer.attention is None for layer in model.hgt_layers)
        assert model.num_parameters() < NeuroSelect(hidden_dim=8).num_parameters()

    def test_can_overfit_two_instances(self):
        model = NeuroSelect(hidden_dim=8, seed=1)
        cnfs = [random_ksat(10, 30, seed=s) for s in (0, 1)]
        graphs = [BipartiteGraph(c) for c in cnfs]
        labels = [0, 1]
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(80):
            for g, y in zip(graphs, labels):
                opt.zero_grad()
                bce_with_logits(model(g), y).backward()
                opt.step()
        assert [model.predict(g) for g in graphs] == labels


class TestBaselines:
    @pytest.mark.parametrize("model_cls,graph_cls", [
        (NeuroSATClassifier, LiteralClauseGraph),
        (GINClassifier, BipartiteGraph),
    ])
    def test_forward_and_predict(self, model_cls, graph_cls):
        model = model_cls(hidden_dim=8, seed=0)
        cnf = random_ksat(10, 30, seed=3)
        assert model.graph_type is graph_cls
        p = model.predict_proba(cnf)
        assert 0.0 <= p <= 1.0

    def test_neurosat_rounds_change_output(self):
        cnf = random_ksat(10, 30, seed=3)
        a = NeuroSATClassifier(hidden_dim=8, num_rounds=1, seed=0)
        b = NeuroSATClassifier(hidden_dim=8, num_rounds=5, seed=0)
        assert a.predict_proba(cnf) != b.predict_proba(cnf)

    def test_gin_trainable(self):
        model = GINClassifier(hidden_dim=8, num_layers=2, seed=0)
        cnf = random_ksat(10, 30, seed=4)
        g = BipartiteGraph(cnf)
        opt = Adam(model.parameters(), lr=1e-2)
        # GIN's sum aggregation starts with a large positive logit, so the
        # interesting direction is pushing towards label 0.
        first = bce_with_logits(model(g), 0.0).item()
        assert first > 1.0
        for _ in range(60):
            opt.zero_grad()
            bce_with_logits(model(g), 0.0).backward()
            opt.step()
        assert bce_with_logits(model(g), 0.0).item() < first

    def test_neurosat_gradients_reach_initial_states(self):
        model = NeuroSATClassifier(hidden_dim=8, num_rounds=2, seed=0)
        g = LiteralClauseGraph(random_ksat(8, 20, seed=0))
        bce_with_logits(model(g), 1.0).backward()
        assert model.lit_init.grad is not None
        assert model.clause_init.grad is not None


class TestFeatureBaseline:
    def test_forward_and_predict(self):
        from repro.models import FeatureLogisticRegression

        model = FeatureLogisticRegression(seed=0)
        cnf = random_ksat(10, 30, seed=3)
        p = model.predict_proba(cnf)
        assert 0.0 <= p <= 1.0
        assert model.predict(cnf) in (0, 1)

    def test_learns_ratio_signal(self):
        """Clause/var ratio is a feature, so LR separates sparse vs dense."""
        from repro.models import FeatureLogisticRegression
        from repro.selection import Trainer
        from tests.conftest import make_labeled

        sparse = [make_labeled(random_ksat(12, 24, seed=s), 0) for s in range(4)]
        dense = [make_labeled(random_ksat(12, 60, seed=s), 1) for s in range(4)]
        instances = sparse + dense
        model = FeatureLogisticRegression(seed=0)
        trainer = Trainer(model, learning_rate=5e-2, epochs=40)
        trainer.fit(instances)
        assert trainer.evaluate(instances).accuracy == 1.0

    def test_scaler_statistics(self):
        from repro.models import FeatureLogisticRegression
        from repro.models.baselines.feature_lr import FeatureVector

        model = FeatureLogisticRegression(seed=0)
        vectors = [FeatureVector(random_ksat(10, 20 + 10 * i, seed=i)) for i in range(5)]
        model.fit_scaler(vectors)
        standardized = np.stack([model._standardize(v) for v in vectors])
        np.testing.assert_allclose(standardized.mean(axis=0), 0.0, atol=1e-9)
