"""Tests for the assignment trail."""

import pytest

from repro.solver.assignment import Trail
from repro.solver.clause_db import SolverClause
from repro.solver.types import FALSE, TRUE, UNASSIGNED, encode


class TestTrailBasics:
    def test_initial_state(self):
        trail = Trail(4)
        assert trail.decision_level == 0
        assert trail.num_assigned() == 0
        assert all(trail.value_var(v) == UNASSIGNED for v in range(1, 5))

    def test_assign_sets_value_level_reason(self):
        trail = Trail(3)
        trail.new_decision_level()
        clause = SolverClause([encode(1)])
        trail.assign(encode(1), clause)
        assert trail.value_var(1) == TRUE
        assert trail.levels[1] == 1
        assert trail.reasons[1] is clause

    def test_negative_literal_assignment(self):
        trail = Trail(3)
        trail.assign(encode(-2), None)
        assert trail.value_var(2) == FALSE
        assert trail.value_lit(encode(-2)) == TRUE
        assert trail.value_lit(encode(2)) == FALSE

    def test_value_lit_unassigned(self):
        trail = Trail(2)
        assert trail.value_lit(encode(1)) == UNASSIGNED

    def test_double_assign_asserts(self):
        trail = Trail(2)
        trail.assign(encode(1), None)
        with pytest.raises(AssertionError):
            trail.assign(encode(-1), None)

    def test_all_assigned(self):
        trail = Trail(2)
        trail.assign(encode(1), None)
        assert not trail.all_assigned()
        trail.assign(encode(2), None)
        assert trail.all_assigned()


class TestBacktracking:
    def test_backtrack_removes_above_level(self):
        trail = Trail(5)
        trail.assign(encode(1), None)  # level 0
        trail.new_decision_level()
        trail.assign(encode(2), None)
        trail.assign(encode(3), None)
        trail.new_decision_level()
        trail.assign(encode(4), None)

        undone = trail.backtrack(1)
        assert [u >> 1 for u in undone] == [4]
        assert trail.decision_level == 1
        assert trail.value_var(4) == UNASSIGNED
        assert trail.value_var(2) == TRUE

    def test_backtrack_to_zero(self):
        trail = Trail(3)
        trail.assign(encode(1), None)
        trail.new_decision_level()
        trail.assign(encode(2), None)
        trail.backtrack(0)
        assert trail.decision_level == 0
        assert trail.value_var(1) == TRUE  # level-0 assignment survives
        assert trail.value_var(2) == UNASSIGNED

    def test_backtrack_to_current_level_is_noop(self):
        trail = Trail(2)
        trail.new_decision_level()
        trail.assign(encode(1), None)
        assert trail.backtrack(1) == []
        assert trail.value_var(1) == TRUE

    def test_backtrack_resets_qhead(self):
        trail = Trail(3)
        trail.new_decision_level()
        trail.assign(encode(1), None)
        trail.assign(encode(2), None)
        trail.qhead = 2
        trail.backtrack(0)
        assert trail.qhead == 0

    def test_backtrack_clears_reasons(self):
        trail = Trail(2)
        trail.new_decision_level()
        clause = SolverClause([encode(1), encode(2)])
        trail.assign(encode(1), clause)
        trail.backtrack(0)
        assert trail.reasons[1] is None


class TestModelAndReasons:
    def test_model_reflects_assignment(self):
        trail = Trail(3)
        trail.assign(encode(1), None)
        trail.assign(encode(-3), None)
        model = trail.model()
        assert model[1] is True
        assert model[2] is None
        assert model[3] is False

    def test_is_reason(self):
        trail = Trail(2)
        clause = SolverClause([encode(1), encode(2)])
        trail.assign(encode(1), clause)
        assert trail.is_reason(clause)
        other = SolverClause([encode(2), encode(1)])
        assert not trail.is_reason(other)

    def test_is_reason_false_when_unassigned(self):
        trail = Trail(2)
        clause = SolverClause([encode(1), encode(2)])
        assert not trail.is_reason(clause)
