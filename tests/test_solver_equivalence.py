"""Differential equivalence suite for the optimized BCP hot path.

The blocking-literal / binary-specialized propagation engine must be
*behaviourally invisible*: on every instance the solver must reach the
same SAT/UNSAT verdict as the independent reference procedures in
``repro.solver.reference``, every SAT model must satisfy the formula,
and every UNSAT run must emit a DRAT proof that the checker accepts.
Both deletion policies are exercised, under a reduce schedule aggressive
enough that clause deletion (and hence ``detach_garbage``) actually
fires during the runs.
"""

import random

import pytest

from repro.cnf import CNF, random_ksat
from repro.policies import get_policy
from repro.solver import (
    ProofLog,
    Solver,
    SolverConfig,
    Status,
    brute_force_status,
    check_drat,
    dpll_solve,
)


def aggressive_config() -> SolverConfig:
    """Reduce early and hard so deletion runs inside short solves."""
    return SolverConfig(
        reduce_interval=40,
        reduce_interval_growth=10,
        reduce_fraction=1.0,
        keep_glue=0,
        protect_used=False,
    )


def mixed_cnf(num_vars: int, num_clauses: int, frac_binary: float, seed: int) -> CNF:
    """Random formula mixing binary and ternary clauses (fixed seed)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = 2 if rng.random() < frac_binary else 3
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return CNF(clauses, num_vars=num_vars)


# (n, m) near the phase transition so both statuses appear; small enough
# for the reference procedures.
BRUTE_INSTANCES = [(14, int(14 * 4.3), seed) for seed in range(12)]
DPLL_INSTANCES = [(40, int(40 * 4.3), seed) for seed in range(8)]
MIXED_INSTANCES = [(30, 140, 0.5, seed) for seed in range(8)]
POLICIES = ["default", "frequency"]


def solve_checked(cnf: CNF, policy_name: str):
    """Solve with proof logging; verify model or proof; return status."""
    proof = ProofLog()
    solver = Solver(
        cnf, policy=get_policy(policy_name), config=aggressive_config(), proof=proof
    )
    result = solver.solve()
    assert result.status is not Status.UNKNOWN
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model), "model does not satisfy formula"
    else:
        assert check_drat(cnf, proof.text()), "UNSAT proof rejected"
    return result.status


class TestAgainstBruteForce:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("n,m,seed", BRUTE_INSTANCES)
    def test_status_matches_brute_force(self, n, m, seed, policy_name):
        cnf = random_ksat(n, m, seed=seed)
        expected = brute_force_status(cnf)
        assert solve_checked(cnf, policy_name) is expected


class TestAgainstDPLL:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("n,m,seed", DPLL_INSTANCES)
    def test_status_matches_dpll(self, n, m, seed, policy_name):
        cnf = random_ksat(n, m, seed=seed)
        expected, _ = dpll_solve(cnf)
        assert solve_checked(cnf, policy_name) is expected


class TestBinaryHeavyFormulas:
    """Half-binary formulas drive the specialized binary watcher path."""

    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("n,m,frac,seed", MIXED_INSTANCES)
    def test_status_matches_dpll(self, n, m, frac, seed, policy_name):
        cnf = mixed_cnf(n, m, frac, seed)
        expected, _ = dpll_solve(cnf)
        assert solve_checked(cnf, policy_name) is expected


class TestPoliciesAgree:
    """Both deletion policies must reach the same verdict on the same
    formula — deletion heuristics may change effort, never the answer."""

    @pytest.mark.parametrize("seed", range(6))
    def test_same_status_both_policies(self, seed):
        cnf = random_ksat(36, int(36 * 4.3), seed=100 + seed)
        statuses = {solve_checked(cnf, name) for name in POLICIES}
        assert len(statuses) == 1
