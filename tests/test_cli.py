"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.cnf import CNF, parse_dimacs_file, write_dimacs_file
from repro.solver import check_drat


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "sat.cnf"
    write_dimacs_file(CNF([[1, 2], [-2, 3], [-1, -3]]), path)
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "unsat.cnf"
    write_dimacs_file(CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]]), path)
    return str(path)


class TestSolve:
    def test_sat_exit_code_and_vline(self, sat_file, capsys):
        assert main(["solve", sat_file]) == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert out.splitlines()[1].startswith("v ")

    def test_unsat_exit_code(self, unsat_file, capsys):
        assert main(["solve", unsat_file]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_unknown_on_budget(self, tmp_path, capsys):
        from repro.cnf import pigeonhole

        path = tmp_path / "php.cnf"
        write_dimacs_file(pigeonhole(7), path)
        assert main(["solve", str(path), "--max-conflicts", "5"]) == 0
        assert "s UNKNOWN" in capsys.readouterr().out

    def test_proof_written_and_checks(self, unsat_file, tmp_path, capsys):
        proof_path = tmp_path / "out.drat"
        assert main(["solve", unsat_file, "--proof", str(proof_path)]) == 20
        cnf = parse_dimacs_file(unsat_file)
        assert check_drat(cnf, proof_path.read_text())

    def test_assumptions(self, sat_file, capsys):
        assert main(["solve", sat_file, "--assume", "1", "3"]) == 20

    def test_with_preprocessing(self, sat_file, capsys):
        assert main(["solve", sat_file, "--preprocess"]) == 10

    def test_frequency_policy(self, sat_file, capsys):
        assert main(["solve", sat_file, "--policy", "frequency"]) == 10


class TestGenerate:
    def test_generate_and_reload(self, tmp_path, capsys):
        out = tmp_path / "gen.cnf"
        code = main([
            "generate", "random_ksat", "--out", str(out),
            "--param", "num_vars=12", "--param", "num_clauses=40",
            "--seed", "5",
        ])
        assert code == 0
        cnf = parse_dimacs_file(out)
        assert cnf.num_vars == 12
        assert cnf.num_clauses == 40

    def test_pigeonhole_no_seed_param(self, tmp_path):
        out = tmp_path / "php.cnf"
        assert main(["generate", "pigeonhole", "--out", str(out),
                     "--param", "holes=3"]) == 0
        assert parse_dimacs_file(out).num_vars == 12

    def test_bad_param_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "random_ksat", "--out", str(tmp_path / "x.cnf"),
                  "--param", "oops"])


class TestFeaturesPreprocessLabel:
    def test_features_lists_all(self, sat_file, capsys):
        assert main(["features", sat_file]) == 0
        out = capsys.readouterr().out
        assert "num_vars" in out and "horn_fraction" in out

    def test_preprocess_writes_simplified(self, tmp_path, capsys):
        src = tmp_path / "in.cnf"
        write_dimacs_file(CNF([[1], [-1, 2], [2, 3], [2, 3, 4]]), src)
        out = tmp_path / "out.cnf"
        assert main(["preprocess", str(src), "--out", str(out)]) == 0
        simplified = parse_dimacs_file(out)
        assert simplified.num_clauses < 4

    def test_preprocess_detects_unsat(self, unsat_file, tmp_path, capsys):
        code = main(["preprocess", unsat_file, "--out", str(tmp_path / "o.cnf")])
        assert code == 20

    def test_label_reports_policies(self, sat_file, capsys):
        assert main(["label", sat_file, "--max-conflicts", "100"]) == 0
        out = capsys.readouterr().out
        assert "default:" in out and "frequency:" in out and "label:" in out


class TestTrainSelect:
    def test_train_then_select(self, tmp_path, sat_file, capsys):
        weights = tmp_path / "w.npz"
        code = main([
            "train", "--out", str(weights),
            "--per-year", "1", "--epochs", "2",
            "--hidden-dim", "8", "--label-budget", "200",
        ])
        assert code == 0
        assert weights.exists()
        code = main([
            "select", sat_file, "--weights", str(weights), "--hidden-dim", "8",
        ])
        assert code == 10
        out = capsys.readouterr().out
        assert "policy:" in out


class TestDatasetAndReport:
    def test_dataset_build_and_reuse(self, tmp_path, capsys):
        ds_path = tmp_path / "ds.json"
        assert main(["dataset", "--out", str(ds_path),
                     "--per-year", "1", "--label-budget", "200"]) == 0
        assert ds_path.exists()
        weights = tmp_path / "w.npz"
        code = main([
            "train", "--out", str(weights), "--dataset", str(ds_path),
            "--epochs", "1", "--hidden-dim", "8",
        ])
        assert code == 0
        assert weights.exists()

    def test_report_command(self, capsys, monkeypatch, tmp_path):
        import repro.bench.reporting as reporting

        called = {}

        def fake_build():
            called["yes"] = True

        monkeypatch.setattr(reporting, "build_experiments_md", fake_build)
        assert main(["report"]) == 0
        assert called


class TestTrim:
    def test_trim_unsat(self, unsat_file, tmp_path, capsys):
        out = tmp_path / "trimmed.drat"
        assert main(["trim", unsat_file, "--out", str(out)]) == 20
        assert out.exists()
        cnf = parse_dimacs_file(unsat_file)
        assert check_drat(cnf, out.read_text())

    def test_trim_sat_is_noop(self, sat_file, tmp_path, capsys):
        out = tmp_path / "t.drat"
        assert main(["trim", sat_file, "--out", str(out)]) == 0
        assert not out.exists()
