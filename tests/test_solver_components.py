"""Tests for decision heuristic, restarts, clause DB, and reduction."""

import pytest

from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver.assignment import Trail
from repro.solver.clause_db import ClauseDatabase, SolverClause
from repro.solver.decide import Decider
from repro.solver.propagate import Propagator
from repro.solver.reduce import ReduceScheduler
from repro.solver.restart import EMARestarts, LubyRestarts, luby
from repro.solver.statistics import SolverStatistics
from repro.solver.types import encode
from repro.solver.watchers import WatchLists


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    def test_powers(self):
        assert luby(2**10 - 1) == 2**9

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            luby(0)


class TestLubyRestarts:
    def test_restart_after_base_conflicts(self):
        policy = LubyRestarts(base=3)
        for _ in range(2):
            policy.on_conflict(glue=2)
        assert not policy.should_restart()
        policy.on_conflict(glue=2)
        assert policy.should_restart()
        policy.on_restart()
        assert not policy.should_restart()

    def test_limits_follow_luby(self):
        policy = LubyRestarts(base=10)
        limits = [policy._limit]
        for _ in range(4):
            policy.on_restart()
            limits.append(policy._limit)
        assert limits == [10, 10, 20, 10, 10]


class TestEMARestarts:
    def test_requires_minimum_conflicts(self):
        policy = EMARestarts(min_conflicts=5)
        for _ in range(4):
            policy.on_conflict(glue=50)
        assert not policy.should_restart()

    def test_triggers_on_glue_spike(self):
        policy = EMARestarts(min_conflicts=10)
        for _ in range(200):
            policy.on_conflict(glue=3)
        assert not policy.should_restart()
        for _ in range(30):
            policy.on_conflict(glue=30)
        assert policy.should_restart()
        policy.on_restart()
        assert not policy.should_restart()


class TestDecider:
    def test_picks_highest_activity(self):
        trail = Trail(3)
        decider = Decider(trail)
        decider.bump(2)
        decider.bump(2)
        decider.bump(3)
        assert decider.pick_branch_variable() == 2

    def test_skips_assigned(self):
        trail = Trail(2)
        decider = Decider(trail)
        decider.bump(1)
        trail.assign(encode(1), None)
        assert decider.pick_branch_variable() == 2

    def test_none_when_all_assigned(self):
        trail = Trail(1)
        decider = Decider(trail)
        trail.assign(encode(1), None)
        assert decider.pick_branch_variable() is None

    def test_requeue_after_backtrack(self):
        trail = Trail(1)
        decider = Decider(trail)
        assert decider.pick_branch_variable() == 1
        trail.new_decision_level()
        trail.assign(encode(1), None)
        for lit in trail.backtrack(0):
            decider.requeue(lit >> 1)
        assert decider.pick_branch_variable() == 1

    def test_phase_saving_controls_polarity(self):
        trail = Trail(1)
        decider = Decider(trail, initial_phase=True)
        assert decider.pick_branch_literal() == encode(1)
        decider.requeue(1)
        decider.save_phase(1, False)
        assert decider.pick_branch_literal() == encode(-1)

    def test_rescale_preserves_order(self):
        trail = Trail(3)
        decider = Decider(trail)
        decider.activity[1] = 9e99
        decider.var_inc = 5e99
        decider.bump(1)  # triggers rescale
        decider.bump(2)
        assert decider.activity[1] > decider.activity[3]
        assert decider.pick_branch_variable() in (1, 2)

    def test_decay_grows_increment(self):
        trail = Trail(1)
        decider = Decider(trail, decay=0.5)
        before = decider.var_inc
        decider.decay_activities()
        assert decider.var_inc == pytest.approx(before * 2)


class TestClauseDatabase:
    def test_reducible_excludes_low_glue_and_binaries(self):
        db = ClauseDatabase(keep_glue=2)
        low = db.add_learned([2, 4, 6], glue=2)
        binary = db.add_learned([2, 4], glue=5)
        big = db.add_learned([2, 4, 6, 8], glue=5)
        reducible = db.reducible_clauses()
        assert big in reducible
        assert low not in reducible
        assert binary not in reducible

    def test_bump_and_rescale(self):
        db = ClauseDatabase()
        clause = db.add_learned([2, 4, 6], glue=3)
        clause.activity = 2e20
        db.bump_clause(clause)
        assert clause.activity == pytest.approx(2.0)  # rescaled by 1e-20
        assert db.clause_inc == pytest.approx(1e-20)
        assert clause.used

    def test_sweep_removes_garbage(self):
        db = ClauseDatabase()
        keep = db.add_learned([2, 4, 6], glue=3)
        drop = db.add_learned([2, 4, 8], glue=3)
        db.mark_garbage(drop)
        removed = db.sweep()
        assert removed == 1
        assert list(db.live_learned()) == [keep]

    def test_counts(self):
        db = ClauseDatabase()
        db.add_original([2, 4])
        db.add_learned([2, 6, 8], glue=3)
        assert db.num_original == 1
        assert db.num_learned == 1


def build_reduce_fixture(policy, num_clauses=10, **kwargs):
    trail = Trail(30)
    watches = WatchLists(30)
    stats = SolverStatistics()
    prop = Propagator(trail, watches, stats)
    db = ClauseDatabase(keep_glue=2)
    clauses = []
    for i in range(num_clauses):
        lits = [encode(1 + i), encode(-(2 + i)), encode(3 + i)]
        clause = db.add_learned(lits, glue=3 + (i % 4))
        watches.attach(clause)
        clauses.append(clause)
    reducer = ReduceScheduler(db, trail, watches, prop, stats, policy, **kwargs)
    return reducer, db, stats, clauses, prop


class TestReduceScheduler:
    def test_should_reduce_follows_conflicts(self):
        reducer, _, stats, _, _ = build_reduce_fixture(DefaultPolicy(), interval=5)
        assert not reducer.should_reduce()
        stats.conflicts = 5
        assert reducer.should_reduce()

    def test_reduce_deletes_target_fraction(self):
        reducer, db, stats, clauses, _ = build_reduce_fixture(
            DefaultPolicy(), num_clauses=10, target_fraction=0.5, protect_used=False
        )
        deleted = reducer.reduce()
        assert deleted == 5
        assert db.num_learned == 5
        assert stats.deleted_clauses == 5

    def test_worst_glue_deleted_first(self):
        reducer, db, _, clauses, _ = build_reduce_fixture(
            DefaultPolicy(), num_clauses=8, target_fraction=0.5, protect_used=False
        )
        reducer.reduce()
        survivors = list(db.live_learned())
        worst_surviving = max(c.glue for c in survivors)
        # All glue-6 clauses (the worst tier) must be gone before glue-3.
        assert all(c.glue <= worst_surviving for c in survivors)
        assert min(c.glue for c in clauses) in {c.glue for c in survivors}

    def test_used_clauses_get_one_round_grace(self):
        reducer, db, _, clauses, _ = build_reduce_fixture(
            DefaultPolicy(), num_clauses=4, target_fraction=1.0, protect_used=True
        )
        for clause in clauses:
            clause.used = True
        assert reducer.reduce() == 0
        assert all(not c.used for c in db.live_learned())
        assert reducer.reduce() == 4

    def test_reason_clauses_protected(self):
        reducer, db, _, clauses, _ = build_reduce_fixture(
            DefaultPolicy(), num_clauses=3, target_fraction=1.0, protect_used=False
        )
        reason = clauses[0]
        reducer.trail.assign(reason.lits[0], reason)
        reducer.reduce()
        assert reason in list(db.live_learned())

    def test_frequencies_reset_after_reduce(self):
        reducer, _, _, _, prop = build_reduce_fixture(DefaultPolicy(), protect_used=False)
        prop.frequency[5] = 99
        reducer.reduce()
        assert prop.frequency[5] == 0

    def test_limit_grows_between_rounds(self):
        reducer, _, stats, _, _ = build_reduce_fixture(
            DefaultPolicy(), interval=10, interval_growth=7, protect_used=False
        )
        stats.conflicts = 10
        reducer.reduce()
        first_limit = reducer._limit
        stats.conflicts = first_limit
        reducer.reduce()
        assert reducer._limit - stats.conflicts > 10 + 7

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            build_reduce_fixture(DefaultPolicy(), target_fraction=0.0)

    def test_frequency_policy_changes_tie_breaking(self):
        # Two clauses with identical glue/size; one over hot variables.
        policy = FrequencyPolicy()
        trail = Trail(10)
        watches = WatchLists(10)
        stats = SolverStatistics()
        prop = Propagator(trail, watches, stats)
        db = ClauseDatabase(keep_glue=2)
        cold = db.add_learned([encode(1), encode(2), encode(3)], glue=4)
        hot = db.add_learned([encode(4), encode(5), encode(6)], glue=4)
        for c in (cold, hot):
            watches.attach(c)
        for hot_var in (4, 5, 6):
            prop.bump_frequency(hot_var, 100)
        prop.bump_frequency(1, 1)
        reducer = ReduceScheduler(
            db, trail, watches, prop, stats, policy,
            target_fraction=0.5, protect_used=False,
        )
        reducer.reduce()
        survivors = list(db.live_learned())
        assert survivors == [hot]
