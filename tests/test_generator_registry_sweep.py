"""Sweep: every registered generator family builds and solves end to end."""

import pytest

from repro.cnf import GENERATOR_FAMILIES, GeneratorSpec
from repro.solver import Solver, Status

FAMILY_PARAMS = {
    "random_ksat": {"num_vars": 15, "num_clauses": 50},
    "pigeonhole": {"holes": 3},
    "graph_coloring": {"num_nodes": 8, "num_colors": 3, "edge_prob": 0.3},
    "parity_chain": {"num_vars": 6},
    "community_sat": {
        "num_communities": 2,
        "vars_per_community": 8,
        "clauses_per_community": 20,
    },
    "cardinality_conflict": {"num_vars": 6},
}


def test_every_family_has_sweep_params():
    assert set(FAMILY_PARAMS) == set(GENERATOR_FAMILIES)


@pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
def test_spec_builds_and_solves(family):
    spec = GeneratorSpec(
        family, tuple(sorted(FAMILY_PARAMS[family].items())), seed=1
    )
    cnf = spec.build()
    assert cnf.num_vars > 0
    assert cnf.num_clauses > 0
    result = Solver(cnf).solve(max_conflicts=20_000)
    assert result.status in (Status.SATISFIABLE, Status.UNSATISFIABLE)
    if result.is_sat:
        assert cnf.check_model(result.model)


@pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
def test_spec_name_mentions_family_and_seed(family):
    spec = GeneratorSpec(
        family, tuple(sorted(FAMILY_PARAMS[family].items())), seed=42
    )
    assert family in spec.name
    assert "s42" in spec.name


@pytest.mark.parametrize("family", sorted(f for f in GENERATOR_FAMILIES if f != "pigeonhole"))
def test_seeds_vary_output(family):
    specs = [
        GeneratorSpec(family, tuple(sorted(FAMILY_PARAMS[family].items())), seed=s)
        for s in (1, 2)
    ]
    texts = [
        tuple(c.literals for c in spec.build().clauses) for spec in specs
    ]
    assert texts[0] != texts[1]
