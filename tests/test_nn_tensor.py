"""Tests for the autograd engine: every op's gradient vs finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, ones, tensor, zeros


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build, x_data, atol=1e-6):
    """build(t) -> scalar Tensor; compares autograd vs numeric grads."""
    t = Tensor(x_data.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    numeric = numeric_grad(lambda: build(Tensor(t.data)).item(), t.data)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


RNG = np.random.default_rng(42)


class TestArithmeticGradients:
    def test_add_broadcast(self):
        b = Tensor(RNG.normal(size=(3,)))
        check_gradient(lambda t: ((t + b) * (t + b)).sum(), RNG.normal(size=(4, 3)))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: (t * other).sum(), RNG.normal(size=(4, 3)))

    def test_sub_and_neg(self):
        check_gradient(lambda t: ((-t) - 2.0).sum(), RNG.normal(size=(5,)))

    def test_div(self):
        denom = Tensor(RNG.uniform(1.0, 2.0, size=(4,)))
        check_gradient(lambda t: (t / denom).sum(), RNG.normal(size=(3, 4)))

    def test_div_by_tensor_gradient_flows_to_denominator(self):
        t = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (Tensor(np.array([1.0, 1.0])) / t).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [-0.25, -0.0625])

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_matmul_both_sides(self):
        a_data = RNG.normal(size=(3, 4))
        b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        a = Tensor(a_data, requires_grad=True)
        ((a @ b) ** 2).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 2)
        check_gradient(lambda t: ((t @ Tensor(b.data)) ** 2).sum(), a_data)


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_gradient(
            lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), RNG.normal(size=(3, 4))
        )

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_max(self):
        x = np.array([[1.0, 5.0, 3.0], [7.0, 2.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 1, 0], [1, 0, 0]])

    def test_max_splits_ties(self):
        t = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])

    def test_transpose(self):
        check_gradient(lambda t: (t.T @ t).sum(), RNG.normal(size=(3, 4)))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_getitem(self):
        check_gradient(lambda t: (t[1] ** 2).sum(), RNG.normal(size=(3, 4)))


class TestNonlinearities:
    def test_relu(self):
        x = RNG.normal(size=(10,))
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_gradient(lambda t: (t.relu() ** 2).sum(), x)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), RNG.normal(size=(6,)))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), RNG.normal(size=(6,)))

    def test_exp_log(self):
        check_gradient(lambda t: (t.exp().log() * t).sum(), RNG.uniform(0.5, 2, size=(5,)))

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt().sum(), RNG.uniform(0.5, 4, size=(5,)))


class TestGraphPrimitives:
    def test_gather_rows_grad_accumulates_duplicates(self):
        t = Tensor(np.eye(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        t.gather_rows(idx).sum().backward()
        # Row 0 was gathered twice: its gradient is 2 in every column.
        np.testing.assert_allclose(t.grad.sum(axis=1), [6, 0, 3])

    def test_scatter_sum_forward(self):
        t = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = t.scatter_sum(np.array([0, 1, 0]), 2)
        np.testing.assert_allclose(out.data, [[4.0], [2.0]])

    def test_scatter_sum_gradient(self):
        data = RNG.normal(size=(5, 2))
        seg = np.array([0, 1, 1, 0, 2])
        check_gradient(lambda t: (t.scatter_sum(seg, 3) ** 2).sum(), data)

    def test_gather_then_scatter_gradient(self):
        data = RNG.normal(size=(4, 3))
        idx = np.array([0, 0, 2, 3, 1])
        seg = np.array([0, 1, 1, 0, 1])
        check_gradient(
            lambda t: (t.gather_rows(idx).scatter_sum(seg, 2) ** 2).sum(), data
        )


class TestAutogradMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph(self):
        # y = a*a used twice: gradients must accumulate once per path.
        t = Tensor(np.array([3.0]), requires_grad=True)
        y = t * t
        (y + y).sum().backward()
        np.testing.assert_allclose(t.grad, [12.0])

    def test_no_grad_tracking_without_requires_grad(self):
        t = Tensor(np.ones(3))
        out = (t * 2).sum()
        assert not out.requires_grad
        assert out._backward is None

    def test_detach_breaks_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).data.sum() == 4
        assert tensor([1, 2]).data.dtype == np.float64


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=4),
        elements=st.floats(min_value=-3, max_value=3, allow_nan=False),
    )
)
def test_property_sum_of_sigmoid_gradient(x):
    """Hypothesis: sigmoid-sum gradient matches finite differences anywhere."""
    check_gradient(lambda t: t.sigmoid().sum(), x.copy(), atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_property_matmul_chain_shapes(n, m):
    a = Tensor(RNG.normal(size=(n, m)), requires_grad=True)
    b = Tensor(RNG.normal(size=(m, n)), requires_grad=True)
    ((a @ b) ** 2).sum().backward()
    assert a.grad.shape == (n, m)
    assert b.grad.shape == (m, n)
