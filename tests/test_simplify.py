"""Tests for the preprocessing stack: passes, elimination, pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, pigeonhole, random_ksat
from repro.simplify import (
    ModelReconstructor,
    Preprocessor,
    eliminate_variables,
    probe_failed_literals,
    propagate_units,
    solve_with_preprocessing,
    strengthen,
    subsume,
)
from repro.simplify.passes import SimplifyConflict
from repro.solver import Solver, Status, brute_force_status


def fs(*lits):
    return frozenset(lits)


class TestPropagateUnits:
    def test_chain(self):
        clauses, fixed = propagate_units([fs(1), fs(-1, 2), fs(-2, 3)])
        assert clauses == []
        assert fixed == {1: True, 2: True, 3: True}

    def test_simplifies_satisfied_and_falsified(self):
        clauses, fixed = propagate_units([fs(1), fs(1, 2), fs(-1, 2, 3)])
        assert fixed[1] is True
        assert clauses == [fs(2, 3)]

    def test_conflict_raises(self):
        with pytest.raises(SimplifyConflict):
            propagate_units([fs(1), fs(-1)])

    def test_no_units_is_noop(self):
        clauses, fixed = propagate_units([fs(1, 2), fs(-1, -2)])
        assert len(clauses) == 2 and fixed == {}


class TestSubsume:
    def test_superset_removed(self):
        clauses, removed = subsume([fs(1, 2), fs(1, 2, 3)])
        assert removed == 1
        assert clauses == [fs(1, 2)]

    def test_duplicates_removed(self):
        clauses, removed = subsume([fs(1, 2), fs(2, 1)])
        assert removed == 1

    def test_unrelated_kept(self):
        clauses, removed = subsume([fs(1, 2), fs(3, 4), fs(-1, -2)])
        assert removed == 0
        assert len(clauses) == 3

    def test_unit_subsumes_everything_containing_it(self):
        clauses, removed = subsume([fs(5), fs(5, 1), fs(5, -2, 3)])
        assert clauses == [fs(5)]
        assert removed == 2


class TestStrengthen:
    def test_self_subsuming_resolution(self):
        # D = (1, 2); C = (-1, 2, 3) -> C loses -1, becomes (2, 3).
        clauses, count = strengthen([fs(1, 2), fs(-1, 2, 3)])
        assert count == 1
        assert fs(2, 3) in clauses

    def test_no_op_when_no_candidates(self):
        clauses, count = strengthen([fs(1, 2), fs(3, 4)])
        assert count == 0

    def test_strengthening_preserves_equivalence(self):
        original = CNF([[1, 2], [-1, 2, 3], [-2, -3]])
        clauses, _ = strengthen([frozenset(c.literals) for c in original.clauses])
        simplified = CNF([sorted(c) for c in clauses], num_vars=3)
        assert brute_force_status(original) is brute_force_status(simplified)


class TestProbing:
    def test_failed_literal_found(self):
        # Assuming 1 propagates 2 and -2: 1 fails, so -1 is forced.
        clauses = [fs(-1, 2), fs(-1, -2), fs(1, 3)]
        forced, unsat = probe_failed_literals(clauses)
        assert not unsat
        assert -1 in forced

    def test_both_polarities_failing_is_unsat(self):
        clauses = [fs(-1, 2), fs(-1, -2), fs(1, 3), fs(1, -3)]
        forced, unsat = probe_failed_literals(clauses)
        assert unsat

    def test_probe_limit_respected(self):
        clauses = [fs(i, i + 1) for i in range(1, 50)]
        forced, unsat = probe_failed_literals(clauses, max_probes=3)
        assert not unsat


class TestElimination:
    def test_pure_literal_variable_eliminated(self):
        rec = ModelReconstructor()
        clauses, eliminated, unsat = eliminate_variables(
            [fs(1, 2), fs(1, 3)], num_vars=3, reconstructor=rec
        )
        assert not unsat
        assert 1 in eliminated
        # Pure literal: no resolvents at all.
        assert all(1 not in c and -1 not in c for c in clauses)

    def test_resolution_elimination_cascades(self):
        rec = ModelReconstructor()
        clauses, eliminated, unsat = eliminate_variables(
            [fs(1, 2), fs(-1, 3)], num_vars=3, reconstructor=rec
        )
        assert not unsat
        # Var 1 resolves to (2, 3); var 2 then becomes pure and the sweep
        # eliminates it too, leaving nothing.
        assert eliminated[0] == 1
        assert clauses == []
        # Reconstruction still produces a model of the original formula.
        model = rec.extend([None, None, None, None])
        assert CNF([[1, 2], [-1, 3]]).check_model(model)

    def test_empty_resolvent_reports_unsat(self):
        rec = ModelReconstructor()
        _, _, unsat = eliminate_variables(
            [fs(1), fs(-1)], num_vars=1, reconstructor=rec
        )
        assert unsat

    def test_growth_bound_respected(self):
        # 3 x 3 occurrences -> 9 resolvents > 6 originals: skip at growth 0.
        pos = [fs(1, i) for i in (2, 3, 4)]
        neg = [fs(-1, i) for i in (5, 6, 7)]
        rec = ModelReconstructor()
        _, eliminated, _ = eliminate_variables(
            pos + neg, num_vars=7, reconstructor=rec, growth=0
        )
        assert 1 not in eliminated

    def test_max_occurrences_respected(self):
        clauses = [fs(1, i) for i in range(2, 30)]
        rec = ModelReconstructor()
        _, eliminated, _ = eliminate_variables(
            clauses, num_vars=30, reconstructor=rec, max_occurrences=5
        )
        assert 1 not in eliminated

    def test_reconstruction_satisfies_saved_clauses(self):
        rec = ModelReconstructor()
        clauses, eliminated, _ = eliminate_variables(
            [fs(1, 2), fs(-1, 3)], num_vars=3, reconstructor=rec
        )
        # Model of the reduced formula: x2 false, x3 true satisfies (2,3).
        model = [None, None, False, True]
        rec.extend(model)
        assert model[1] is not None
        original = CNF([[1, 2], [-1, 3]])
        assert original.check_model([None, model[1], False, True])


class TestPipeline:
    def test_unsat_detected_by_preprocessing_alone(self):
        result = Preprocessor().preprocess(CNF([[1], [-1]]))
        assert result.status is Status.UNSATISFIABLE

    def test_empty_clause_detected(self):
        result = Preprocessor().preprocess(CNF([[]]))
        assert result.status is Status.UNSATISFIABLE

    def test_stats_accumulate(self):
        cnf = CNF([[1], [-1, 2], [2, 3, 4], [2, 3, 4, 5], [5, 6], [-5, 6]])
        result = Preprocessor().preprocess(cnf)
        assert result.stats.rounds >= 1
        assert result.stats.fixed_variables >= 2

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            Preprocessor(max_rounds=0)

    def test_passes_can_be_disabled(self):
        pre = Preprocessor(
            enable_subsumption=False,
            enable_strengthening=False,
            enable_probing=False,
            enable_elimination=False,
        )
        cnf = CNF([[1, 2], [1, 2, 3]])
        result = pre.preprocess(cnf)
        assert result.stats.subsumed_clauses == 0
        assert result.cnf.num_clauses == 2

    def test_solve_with_preprocessing_model_verified(self):
        cnf = random_ksat(30, 110, seed=3)
        result = solve_with_preprocessing(cnf)
        if result.status is Status.SATISFIABLE:
            assert cnf.check_model(result.model)

    def test_matches_plain_solver_on_families(self):
        for cnf in (random_ksat(30, 126, seed=9), pigeonhole(3)):
            assert (
                solve_with_preprocessing(cnf).status
                is Solver(cnf).solve().status
            )


@st.composite
def small_cnfs(draw, max_vars: int = 7, max_clauses: int = 18):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(st.lists(literal, min_size=1, max_size=4), max_size=max_clauses)
    )
    return CNF(clauses, num_vars=num_vars)


@settings(max_examples=100, deadline=None)
@given(small_cnfs())
def test_property_preprocessing_preserves_satisfiability(cnf):
    expected = brute_force_status(cnf)
    result = solve_with_preprocessing(cnf)
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)


@settings(max_examples=60, deadline=None)
@given(small_cnfs())
def test_property_each_pass_preserves_satisfiability(cnf):
    baseline = brute_force_status(cnf)
    clauses = [frozenset(c.literals) for c in cnf.clauses if not c.is_tautology()]

    subsumed, _ = subsume(clauses)
    assert brute_force_status(
        CNF([sorted(c) for c in subsumed], num_vars=cnf.num_vars)
    ) is baseline

    strengthened, _ = strengthen(clauses)
    assert brute_force_status(
        CNF([sorted(c) for c in strengthened], num_vars=cnf.num_vars)
    ) is baseline
