"""Tests for the benchmark harness (calibration, runner, tables, drivers)."""

import pytest

from repro.bench import (
    EffortScale,
    fig3_propagation_frequency,
    fig4_policy_scatter,
    fig7_table3_end_to_end,
    format_box_stats,
    format_dict_table,
    format_scatter,
    format_table,
    oracle_end_to_end,
    run_instance,
    run_suite,
    scale_for_budget,
    suite_statistics,
    table1_dataset_statistics,
    table2_classification,
)
from repro.bench.runner import InstanceRecord
from repro.cnf import CNF, random_ksat
from repro.models import NeuroSelect
from repro.selection import PolicyDataset
from repro.solver import Status

from tests.conftest import make_labeled


class TestCalibration:
    def test_scale_maps_budget_to_timeout(self):
        scale = scale_for_budget(100_000)
        assert scale.to_seconds(100_000) == pytest.approx(5000.0)
        assert scale.to_seconds(50_000) == pytest.approx(2500.0)

    def test_seconds_capped_at_timeout(self):
        scale = scale_for_budget(1000)
        assert scale.to_seconds(99_999) == 5000.0

    def test_is_timeout(self):
        scale = scale_for_budget(1000)
        assert scale.is_timeout(1000)
        assert not scale.is_timeout(999)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            scale_for_budget(0)


class TestRunner:
    def test_run_instance_record(self, medium_sat_cnf):
        record = run_instance(medium_sat_cnf, "default", max_propagations=100_000)
        assert record.solved
        assert record.policy == "default"
        assert record.propagations > 0
        assert record.wall_seconds > 0

    def test_run_suite_covers_all(self, medium_sat_cnf):
        instances = [make_labeled(medium_sat_cnf, 0), make_labeled(medium_sat_cnf, 1)]
        records = run_suite(instances, "frequency", max_propagations=100_000)
        assert len(records) == 2
        assert all(r.policy == "frequency" for r in records)

    def test_suite_statistics_counts_timeouts_at_cap(self):
        scale = scale_for_budget(1000)
        records = [
            InstanceRecord("a", "", "default", Status.SATISFIABLE, 500, 10, 0.0),
            InstanceRecord("b", "", "default", Status.UNKNOWN, 1000, 10, 0.0),
        ]
        stats = suite_statistics(records, scale, "Kissat")
        assert stats.solved == 1
        assert stats.median_seconds == pytest.approx((2500 + 5000) / 2)

    def test_suite_statistics_adds_inference_time(self):
        scale = scale_for_budget(1000)
        records = [
            InstanceRecord(
                "a", "", "default", Status.SATISFIABLE, 500, 10, 0.0,
                inference_seconds=10.0,
            )
        ]
        with_inf = suite_statistics(records, scale, "x", include_inference=True)
        without = suite_statistics(records, scale, "x", include_inference=False)
        assert with_inf.median_seconds == pytest.approx(without.median_seconds + 10.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_dict_table(self):
        text = format_dict_table([{"x": 1, "y": 2.5}])
        assert "2.50" in text and "x" in text

    def test_format_dict_table_empty(self):
        assert format_dict_table([]) == "(empty)"

    def test_format_scatter_contains_points_and_diagonal(self):
        text = format_scatter([(10.0, 10.0), (100.0, 5.0)], "x", "y")
        assert "o" in text and "." in text

    def test_format_scatter_empty(self):
        assert format_scatter([], "x", "y") == "(no points)"

    def test_format_box_stats(self):
        text = format_box_stats([1.0, 2.0, 3.0, 4.0], "lat")
        assert "median=2.5" in text
        assert format_box_stats([], "x").endswith("(no data)")


class TestExperimentDrivers:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        sparse = [random_ksat(12, 24, seed=s) for s in range(3)]
        dense = [random_ksat(12, 60, seed=s) for s in range(3)]
        train = [make_labeled(c, 0, year=2016) for c in sparse[:2]] + [
            make_labeled(c, 1, year=2016) for c in dense[:2]
        ]
        test = [make_labeled(sparse[2], 0), make_labeled(dense[2], 1)]
        return PolicyDataset(train=train, test=test)

    def test_fig3(self, medium_sat_cnf):
        result = fig3_propagation_frequency(medium_sat_cnf, max_conflicts=2000)
        assert len(result.frequencies) == medium_sat_cnf.num_vars
        assert result.total_propagations == sum(result.frequencies)
        assert 0.0 <= result.gini <= 1.0
        assert result.top_decile_share >= 0.1  # skew: hot variables dominate
        assert "variables=" in result.render()

    def test_fig3_histogram_covers_all_variables(self, medium_sat_cnf):
        result = fig3_propagation_frequency(medium_sat_cnf, max_conflicts=500)
        assert sum(count for _, count in result.histogram()) == len(result.frequencies)

    def test_fig4(self, tiny_dataset):
        result = fig4_policy_scatter(tiny_dataset.test, max_propagations=50_000)
        assert len(result.names) == 2
        assert result.wins + result.losses + result.ties == 2
        assert "wins=" in result.render()

    def test_table1(self, tiny_dataset):
        text = table1_dataset_statistics(tiny_dataset)
        assert "Training" in text and "Test" in text and "2016" in text

    def test_table2_single_model(self, tiny_dataset):
        model = NeuroSelect(hidden_dim=8, seed=0)
        result = table2_classification(
            tiny_dataset, models={"NeuroSelect": model}, epochs=3
        )
        assert len(result.rows) == 1
        assert "accuracy" in result.rows[0]
        assert result.accuracy_of("NeuroSelect") >= 0.0

    def test_fig7_table3(self, tiny_dataset):
        model = NeuroSelect(hidden_dim=8, seed=0)
        result = fig7_table3_end_to_end(
            tiny_dataset.test, model, max_propagations=50_000
        )
        assert result.kissat_stats.total == 2
        assert result.neuroselect_stats.total == 2
        assert len(result.inference_seconds) == 2
        assert all(t >= 0 for t in result.inference_seconds)
        assert "median improvement" in result.render_table3()
        assert "inference" in result.render_fig7()

    def test_oracle_at_least_as_good_as_either_policy(self, tiny_dataset):
        budget = 50_000
        oracle = oracle_end_to_end(tiny_dataset.test, max_propagations=budget)
        fig4 = fig4_policy_scatter(tiny_dataset.test, max_propagations=budget)
        import statistics as st
        assert oracle.median_seconds <= st.median(fig4.default_seconds) + 1e-9
        assert oracle.median_seconds <= st.median(fig4.frequency_seconds) + 1e-9


class TestCactusResult:
    def make(self):
        from repro.bench.experiments import CactusResult

        return CactusResult(
            series={
                "A": [10.0, 20.0, 30.0],
                "B": [15.0, 100.0],
            },
            timeout_seconds=100.0,
            total_instances=4,
        )

    def test_solved_within(self):
        result = self.make()
        assert result.solved_within("A", 25.0) == 2
        assert result.solved_within("B", 25.0) == 1
        assert result.solved_within("A", 100.0) == 3

    def test_render_contains_series_and_counts(self):
        text = self.make().render()
        assert "A" in text and "B" in text
        assert "out of 4 instances" in text


class TestResultRenders:
    def test_fig4_result_counts(self):
        from repro.bench import Fig4Result
        from repro.bench.calibration import EffortScale

        result = Fig4Result(
            names=["a", "b", "c"],
            default_seconds=[10.0, 20.0, 30.0],
            frequency_seconds=[5.0, 20.0, 40.0],
            scale=EffortScale(propagations_at_timeout=1000),
        )
        assert result.wins == 1 and result.losses == 1 and result.ties == 1
        assert "wins=1" in result.render()

    def test_fig3_render_histogram(self):
        from repro.bench import Fig3Result

        result = Fig3Result(frequencies=[0, 1, 5, 5, 10], total_propagations=21)
        text = result.render()
        assert "total_propagations=21" in text
        assert result.max_frequency == 10

    def test_fig3_empty(self):
        from repro.bench import Fig3Result

        result = Fig3Result(frequencies=[], total_propagations=0)
        assert result.gini == 0.0
        assert result.top_decile_share == 0.0
        assert result.histogram() == []
