"""Tests for learning-rate schedulers and early stopping."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    EarlyStopping,
    StepLR,
    Tensor,
    WarmupLR,
)


def make_optimizer(lr=0.1):
    return Adam([Tensor(np.zeros(1), requires_grad=True)], lr=lr)


class TestConstantLR:
    def test_rate_unchanged(self):
        opt = make_optimizer(0.2)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == pytest.approx(0.2)


class TestStepLR:
    def test_decays_every_step_size(self):
        opt = make_optimizer(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(6)]
        assert rates == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])

    def test_mutates_optimizer(self):
        opt = make_optimizer(0.1)
        sched = StepLR(opt, step_size=1, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        rates = [sched.step() for _ in range(10)]
        assert rates[0] < 1.0
        assert rates[-1] == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_epochs=20)
        rates = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamps_after_total(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_epochs=3, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0)


class TestWarmupLR:
    def test_linear_ramp_then_delegate(self):
        opt = make_optimizer(1.0)
        sched = WarmupLR(opt, warmup_epochs=4, after=ConstantLR(opt))
        rates = [sched.step() for _ in range(6)]
        assert rates[:4] == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert rates[4] == pytest.approx(1.0)

    def test_invalid_warmup(self):
        opt = make_optimizer()
        with pytest.raises(ValueError):
            WarmupLR(opt, warmup_epochs=0, after=ConstantLR(opt))


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=3)
        assert not stopper.update(1.0)
        assert not stopper.update(1.1)
        assert not stopper.update(1.2)
        assert stopper.update(1.3)

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.5)
        assert not stopper.update(0.5)  # improvement
        assert not stopper.update(0.9)
        assert stopper.update(0.8)  # above best - delta twice

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.5)
        stopper.update(1.0)
        assert stopper.update(0.8)  # not enough improvement

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
