"""Solve service: batcher flush semantics, lifecycle, HTTP front door.

The service's correctness claims, each tested here:

* flush-window semantics — a lone request flushes at the deadline, a
  full batch flushes on size, a burst larger than ``max_batch`` splits,
  and a cancelled client is dropped from its batch before inference;
* batched classification equals per-instance classification (the
  segmented-attention equality, end to end through the batcher);
* amortization — a concurrent burst of 8 requests costs strictly fewer
  forward passes than requests, and every response matches a direct
  solve of the same (formula, policy, budget);
* admission control (queue-depth 429) and budget clamping;
* graceful shutdown drains the queue; a restart with the same journal
  answers repeated requests from disk;
* the HTTP protocol: held and fire-and-forget solves, job snapshots,
  NDJSON lifecycle streaming, the failure-taxonomy response codes, and
  malformed-input handling.

Tests drive the event loop with ``asyncio.run`` (no pytest-asyncio
dependency).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cnf import parse_dimacs, random_ksat, to_dimacs
from repro.graph import BipartiteGraph
from repro.models import NeuroSelect
from repro.obs import start_run, summarize_traces
from repro.policies import get_policy
from repro.serve import (
    AdmissionError,
    InferenceBatcher,
    RequestState,
    ServeClient,
    ServeConfig,
    ServeRequest,
    SolveService,
    http_code_for,
)
from repro.serve.http import bound_address, start_service
from repro.solver import Solver, SolverConfig, Status


def _model() -> NeuroSelect:
    return NeuroSelect(hidden_dim=8, seed=0)


def _burst(n: int, offset: int = 0):
    return [
        random_ksat(10 + i, 3 * (10 + i), seed=offset + i) for i in range(n)
    ]


# ---------------------------------------------------------------------------
# batcher flush semantics


def test_single_request_flushes_at_deadline():
    async def scenario():
        batcher = InferenceBatcher(_model(), max_batch=8, flush_window=0.02)
        await batcher.start()
        choice = await batcher.submit(random_ksat(12, 40, seed=0))
        await batcher.stop()
        return choice, batcher.passes

    choice, passes = asyncio.run(scenario())
    assert choice.trigger == "deadline"
    assert choice.batch_size == 1
    assert choice.used_model
    assert passes == 1


def test_deadline_fires_before_size():
    async def scenario():
        batcher = InferenceBatcher(_model(), max_batch=8, flush_window=0.05)
        await batcher.start()
        choices = await asyncio.gather(*[
            batcher.submit(cnf) for cnf in _burst(3)
        ])
        await batcher.stop()
        return choices, batcher.passes

    choices, passes = asyncio.run(scenario())
    assert passes == 1  # 3 < max_batch: one deadline flush, not three
    assert {c.trigger for c in choices} == {"deadline"}
    assert {c.batch_size for c in choices} == {3}


def test_burst_larger_than_max_batch_splits():
    async def scenario():
        batcher = InferenceBatcher(_model(), max_batch=2, flush_window=0.05)
        await batcher.start()
        choices = await asyncio.gather(*[
            batcher.submit(cnf) for cnf in _burst(5)
        ])
        await batcher.stop()
        return choices, batcher.passes

    choices, passes = asyncio.run(scenario())
    assert passes == 3  # 2 + 2 + 1
    assert sorted(c.batch_size for c in choices) == [1, 2, 2, 2, 2]
    assert sum(1 for c in choices if c.trigger == "size") == 4


def test_cancelled_client_dropped_before_inference():
    async def scenario():
        batcher = InferenceBatcher(_model(), max_batch=8, flush_window=0.1)
        await batcher.start()
        doomed = asyncio.ensure_future(
            batcher.submit(random_ksat(12, 40, seed=0))
        )
        await asyncio.sleep(0)  # let it enqueue
        doomed.cancel()
        survivor = await batcher.submit(random_ksat(12, 40, seed=1))
        await batcher.stop()
        with pytest.raises(asyncio.CancelledError):
            await doomed
        return survivor, batcher.passes, batcher.served

    survivor, passes, served = asyncio.run(scenario())
    assert survivor.batch_size == 1  # the cancelled member never counted
    assert passes == 1
    assert served == 1


def test_batched_choice_matches_per_instance_prediction():
    model = _model()
    cnfs = _burst(6)

    async def scenario():
        batcher = InferenceBatcher(model, max_batch=6, flush_window=0.2)
        await batcher.start()
        choices = await asyncio.gather(*[batcher.submit(c) for c in cnfs])
        await batcher.stop()
        return batcher.threshold, choices

    threshold, choices = asyncio.run(scenario())
    for cnf, choice in zip(cnfs, choices):
        expected = model.predict_proba(BipartiteGraph(cnf))
        assert choice.probability == pytest.approx(expected, abs=1e-9)
        assert choice.label == int(expected >= threshold)


def test_oversize_graph_skips_inference():
    async def scenario():
        batcher = InferenceBatcher(
            _model(), max_batch=4, flush_window=0.02, max_nodes=5
        )
        await batcher.start()
        choice = await batcher.submit(random_ksat(20, 80, seed=0))
        await batcher.stop()
        return choice, batcher.passes

    choice, passes = asyncio.run(scenario())
    assert passes == 0
    assert choice.label == 0
    assert choice.policy == "default"
    assert not choice.used_model
    assert choice.probability is None


def test_stop_drains_queued_submissions():
    async def scenario():
        batcher = InferenceBatcher(_model(), max_batch=4, flush_window=5.0)
        await batcher.start()
        waiters = [
            asyncio.ensure_future(batcher.submit(cnf)) for cnf in _burst(3)
        ]
        await asyncio.sleep(0.05)  # window is 5s: still unflushed
        await batcher.stop()
        return await asyncio.gather(*waiters)

    choices = asyncio.run(scenario())
    assert len(choices) == 3
    assert all(c.label in (0, 1) for c in choices)


# ---------------------------------------------------------------------------
# service lifecycle


def test_burst_amortizes_and_matches_direct_solve():
    cnfs = _burst(8)
    budget = 20_000

    async def scenario():
        service = SolveService(
            _model(), ServeConfig(max_batch=8, flush_window=0.25)
        )
        await service.start()
        requests = [
            service.submit(cnf, max_conflicts=budget) for cnf in cnfs
        ]
        done = await asyncio.gather(*[
            service.wait(request.id) for request in requests
        ])
        await service.stop()
        return done, service.batcher.passes

    done, passes = asyncio.run(scenario())
    assert passes < len(done)  # the acceptance criterion, measured
    assert max(request.batch_size for request in done) > 1
    for cnf, request in zip(cnfs, done):
        assert request.state is RequestState.DONE
        direct = Solver(
            cnf,
            policy=get_policy(request.policy),
            config=SolverConfig(core="arena"),
        ).solve(max_conflicts=budget)
        assert request.outcome.status is direct.status
        assert request.outcome.propagations == direct.stats.propagations
        assert request.outcome.conflicts == direct.stats.conflicts


def test_admission_rejects_when_queue_full():
    async def scenario():
        service = SolveService(
            _model(),
            ServeConfig(max_batch=4, flush_window=5.0, max_queue_depth=2),
        )
        await service.start()
        service.submit(random_ksat(10, 30, seed=0))
        service.submit(random_ksat(11, 33, seed=1))
        with pytest.raises(AdmissionError):
            service.submit(random_ksat(12, 36, seed=2))
        stats = service.stats()
        await service.stop(drain=False)
        return stats

    stats = asyncio.run(scenario())
    assert stats["rejected"] == 1
    assert stats["requests"] == 2


def test_budgets_are_clamped_to_the_cap():
    async def scenario():
        service = SolveService(
            None,
            ServeConfig(
                flush_window=0.01,
                default_max_conflicts=777,
                max_conflicts_cap=1_000,
            ),
        )
        await service.start()
        defaulted = service.submit(random_ksat(10, 30, seed=0))
        clamped = service.submit(
            random_ksat(11, 33, seed=1), max_conflicts=10**9
        )
        floored = service.submit(
            random_ksat(12, 36, seed=2), max_conflicts=-5
        )
        await asyncio.gather(*[
            service.wait(r.id) for r in (defaulted, clamped, floored)
        ])
        await service.stop()
        return defaulted, clamped, floored

    defaulted, clamped, floored = asyncio.run(scenario())
    assert defaulted.max_conflicts == 777
    assert clamped.max_conflicts == 1_000
    assert floored.max_conflicts == 1


def test_graceful_shutdown_drains_inflight_requests():
    async def scenario():
        service = SolveService(
            _model(), ServeConfig(max_batch=8, flush_window=0.2)
        )
        await service.start()
        requests = [service.submit(cnf) for cnf in _burst(4)]
        await service.stop(drain=True)  # immediately: nothing solved yet
        return requests, service.stats()

    requests, stats = asyncio.run(scenario())
    assert all(r.state is RequestState.DONE for r in requests)
    assert all(r.outcome is not None for r in requests)
    assert stats["responses"] == 4
    assert stats["cancelled"] == 0


def test_restart_resumes_from_journal(tmp_path):
    journal = str(tmp_path / "serve-journal.jsonl")
    cnfs = _burst(3)

    async def round_trip():
        service = SolveService(
            _model(),
            ServeConfig(max_batch=4, flush_window=0.05, journal=journal),
        )
        await service.start()
        requests = [
            service.submit(cnf, max_conflicts=5_000) for cnf in cnfs
        ]
        done = await asyncio.gather(*[
            service.wait(request.id) for request in requests
        ])
        await service.stop()
        return done

    first = asyncio.run(round_trip())
    assert all(not r.outcome.resumed for r in first)

    second = asyncio.run(round_trip())  # fresh service, same journal
    for before, after in zip(first, second):
        assert after.outcome.resumed  # answered from disk, not re-solved
        assert after.outcome.status is before.outcome.status
        assert after.outcome.propagations == before.outcome.propagations


def test_cancel_inflight_request():
    async def scenario():
        service = SolveService(
            _model(), ServeConfig(max_batch=8, flush_window=5.0)
        )
        await service.start()
        request = service.submit(random_ksat(12, 40, seed=0))
        await asyncio.sleep(0.02)
        assert service.cancel(request.id)
        await request.done.wait()
        state = request.state
        stats = service.stats()
        await service.stop()
        return state, stats, request

    state, stats, request = asyncio.run(scenario())
    assert state is RequestState.CANCELLED
    assert stats["cancelled"] == 1
    assert request.outcome is None
    assert request.http_code() == 200


def test_service_without_model_uses_default_policy():
    async def scenario():
        service = SolveService(None, ServeConfig(flush_window=0.01))
        await service.start()
        request = service.submit(random_ksat(12, 40, seed=3))
        await service.wait(request.id)
        await service.stop()
        return request, service.batcher.passes

    request, passes = asyncio.run(scenario())
    assert passes == 0
    assert request.policy == "default"
    assert not request.used_model
    assert request.outcome.status.decided


# ---------------------------------------------------------------------------
# observability integration


def test_traced_burst_summarizes_as_service_report(tmp_path):
    cnfs = _burst(8)

    async def scenario(observer):
        service = SolveService(
            _model(),
            ServeConfig(max_batch=8, flush_window=0.25),
            observer=observer,
        )
        await service.start()
        requests = [
            service.submit(cnf, max_conflicts=5_000) for cnf in cnfs
        ]
        await asyncio.gather(*[service.wait(r.id) for r in requests])
        await service.stop()

    observer = start_run(
        str(tmp_path), "serve", argv=[], config={}, metrics=True
    )
    asyncio.run(scenario(observer))
    observer.finish(exit_code=0)

    summary = summarize_traces([observer.sink.path])
    assert not summary["errors"]  # every serve-* event passes the schema
    service = summary["service"]
    assert service["admitted"] == 8
    assert service["responses"] == 8
    assert service["inference_passes"] < 8
    assert service["max_batch"] > 1
    histogram = summary["metrics_by_run"][observer.run_id]["histograms"]
    assert histogram["serve.batch_size"]["count"] == service["inference_passes"]
    assert histogram["serve.batch_size"]["max"] > 1


# ---------------------------------------------------------------------------
# HTTP front door


async def _http_service(**cfg):
    service = SolveService(
        _model(),
        ServeConfig(**{"max_batch": 8, "flush_window": 0.1, **cfg}),
    )
    server, _ = await start_service(service, port=0)
    host, port = bound_address(server)
    return service, server, ServeClient(host, port)


async def _http_teardown(service, server):
    server.close()
    await server.wait_closed()
    await service.stop()


def test_http_solve_roundtrip_matches_direct_solve():
    cnf = random_ksat(14, 50, seed=7)

    async def scenario():
        service, server, client = await _http_service()
        try:
            reply = await client.solve(to_dimacs(cnf), max_conflicts=5_000)
        finally:
            await _http_teardown(service, server)
        return reply

    reply = asyncio.run(scenario())
    assert reply.code == 200
    body = reply.json
    direct = Solver(
        cnf,
        policy=get_policy(body["policy"]),
        config=SolverConfig(core="arena"),
    ).solve(max_conflicts=5_000)
    assert body["status"] == direct.status.value
    assert reply.code == http_code_for(direct.status)
    assert body["propagations"] == direct.stats.propagations
    if direct.status is Status.SATISFIABLE:
        assignment = body["model"]  # Model: list indexed by variable
        assert all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        )

    async def fire_and_forget():
        service, server, client = await _http_service()
        try:
            ticket = await client.solve(
                to_dimacs(cnf), max_conflicts=5_000, wait=False
            )
            snapshots = []
            async for snapshot in client.stream(ticket.json["id"]):
                snapshots.append(snapshot)
            status = await client.status(ticket.json["id"])
        finally:
            await _http_teardown(service, server)
        return ticket, snapshots, status

    ticket, snapshots, status = asyncio.run(fire_and_forget())
    assert ticket.code == 202
    assert snapshots[-1]["state"] == "DONE"
    assert snapshots[-1]["status"] == direct.status.value
    assert status.code == 200
    assert status.json["state"] == "DONE"


def test_http_error_paths():
    async def scenario():
        service, server, client = await _http_service(max_queue_depth=0)
        try:
            bad_json = await client._call("POST", "/solve", None)
            not_object = await client._call("POST", "/solve", [1, 2])
            missing = await client._call("POST", "/solve", {"wait": True})
            bad_dimacs = await client.solve("this is not dimacs")
            full = await client.solve("p cnf 1 1\n1 0\n")
            lost = await client.status("q-000000000000")
            no_route = await client._call("GET", "/nope")
            wrong_method = await client._call("GET", "/solve")
            health = await client.health()
        finally:
            await _http_teardown(service, server)
        return (bad_json, not_object, missing, bad_dimacs, full, lost,
                no_route, wrong_method, health)

    (bad_json, not_object, missing, bad_dimacs, full, lost, no_route,
     wrong_method, health) = asyncio.run(scenario())
    assert bad_json.code == 400
    assert not_object.code == 400
    assert missing.code == 400
    assert "dimacs" in missing.json["error"]
    assert bad_dimacs.code == 400
    assert full.code == 429
    assert lost.code == 404
    assert no_route.code == 404
    assert wrong_method.code == 405
    assert health.code == 200
    assert health.json["rejected"] == 1


def test_http_timeout_maps_to_504():
    # A hard formula under a microscopic wall budget: the supervisor
    # kills the attempt and the taxonomy surfaces as a 504 response.
    from repro.cnf import pigeonhole

    async def scenario():
        service, server, client = await _http_service(
            flush_window=0.01, task_timeout=0.05
        )
        try:
            reply = await client.solve(to_dimacs(pigeonhole(7)))
        finally:
            await _http_teardown(service, server)
        return reply

    reply = asyncio.run(scenario())
    assert reply.code == 504
    assert reply.json["status"] == "TIMEOUT"


def test_http_disconnect_cancels_held_request():
    async def scenario():
        service, server, client = await _http_service(flush_window=5.0)
        try:
            # Speak the protocol by hand so the connection can be torn
            # down mid-wait.
            reader, writer = await asyncio.open_connection(
                client.host, client.port
            )
            writer.write(client._request_bytes(
                "POST", "/solve",
                {"dimacs": "p cnf 2 1\n1 2 0\n", "wait": True},
            ))
            await writer.drain()
            for _ in range(100):
                if service.active:
                    break
                await asyncio.sleep(0.01)
            assert service.active == 1
            writer.close()  # client disconnects while queued
            await writer.wait_closed()
            for _ in range(100):
                if service.stats()["cancelled"]:
                    break
                await asyncio.sleep(0.01)
            stats = service.stats()
        finally:
            await _http_teardown(service, server)
        return stats

    stats = asyncio.run(scenario())
    assert stats["cancelled"] == 1
    assert stats["responses"] == 0


def test_cli_serve_subprocess_smoke(tmp_path):
    """`repro serve` end to end: burst, SIGINT drain, valid trace."""
    import re
    import signal
    import subprocess
    import sys

    from repro.obs import validate_traces

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-batch", "4", "--flush-window", "0.1",
         "--hidden-dim", "8", "--trace", str(tmp_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no listen banner, got {banner!r}"
        port = int(match.group(1))

        async def burst():
            client = ServeClient("127.0.0.1", port)
            await client.wait_ready()
            return await asyncio.gather(*[
                client.solve(to_dimacs(cnf), max_conflicts=5_000)
                for cnf in _burst(4)
            ])

        replies = asyncio.run(burst())
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert all(reply.code == 200 for reply in replies)
    assert all(reply.json["status"] in ("SATISFIABLE", "UNSATISFIABLE",
                                        "UNKNOWN") for reply in replies)
    assert "c serve stopped" in out
    traces = sorted(tmp_path.glob("serve-*.jsonl"))
    assert traces, "no trace written"
    assert not validate_traces(traces)


def test_serve_request_snapshot_and_states():
    cnf = parse_dimacs("p cnf 1 1\n1 0\n")
    request = ServeRequest(cnf=cnf, max_conflicts=10)
    assert request.id.startswith("q-")
    assert not request.state.terminal
    snapshot = request.snapshot()
    assert snapshot["state"] == "QUEUED"
    assert "status" not in snapshot
    watched: "asyncio.Queue" = None

    async def watch():
        queue: "asyncio.Queue" = asyncio.Queue()
        request.watchers.append(queue)
        request.transition(RequestState.INFERRING)
        request.transition(RequestState.CANCELLED)
        return queue

    watched = asyncio.run(watch())
    assert request.done.is_set()
    assert watched.get_nowait()["state"] == "INFERRING"
    assert watched.get_nowait()["state"] == "CANCELLED"
    assert request.http_code() == 200


def test_http_metrics_prometheus_default_and_json_opt_in():
    cnf = random_ksat(12, 40, seed=3)

    async def scenario():
        service, server, client = await _http_service()
        try:
            await client.solve(to_dimacs(cnf), max_conflicts=2_000)
            prom = await client.metrics_text()
            legacy = await client.metrics()
        finally:
            await _http_teardown(service, server)
        return prom, legacy

    prom, legacy = asyncio.run(scenario())
    # Default /metrics is Prometheus text exposition 0.0.4.
    assert prom.code == 200
    assert prom.headers["content-type"].startswith("text/plain")
    assert "version=0.0.4" in prom.headers["content-type"]
    assert prom.json is None
    assert "# TYPE serve_requests gauge" in prom.text
    assert "serve_requests 1" in prom.text
    assert "serve_responses 1" in prom.text
    assert "serve_accepting 1" in prom.text
    # ?format=json keeps the historical JSON payload for dashboards.
    assert legacy.code == 200
    assert legacy.json["service"]["responses"] == 1
    assert "registry" in legacy.json


def test_http_metrics_includes_observer_registry():
    cnf = random_ksat(12, 40, seed=4)

    async def scenario(observer):
        service = SolveService(
            _model(),
            ServeConfig(max_batch=8, flush_window=0.1),
            observer=observer,
        )
        server, _ = await start_service(service, port=0, observer=observer)
        host, port = bound_address(server)
        client = ServeClient(host, port)
        try:
            await client.solve(to_dimacs(cnf), max_conflicts=2_000)
            return await client.metrics_text()
        finally:
            await _http_teardown(service, server)

    from repro.obs import MetricsRegistry, Observer

    observer = Observer(registry=MetricsRegistry(enabled=True))
    reply = asyncio.run(scenario(observer))
    # Registry histograms render as cumulative buckets with +Inf.
    assert 'serve_batch_size_bucket{le="+Inf"} 1' in reply.text
    assert "serve_batch_size_count 1" in reply.text
    assert "# TYPE runner_done counter" in reply.text
