"""Smoke tests: every example script must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "SATISFIABLE" in proc.stdout
        assert "random 3-SAT" in proc.stdout

    def test_solve_dimacs(self, tmp_path):
        cnf_path = tmp_path / "t.cnf"
        cnf_path.write_text("p cnf 2 2\n1 2 0\n-1 2 0\n")
        proc = run_example("solve_dimacs.py", str(cnf_path), "--policy", "frequency")
        assert proc.returncode == 10, proc.stderr
        assert "s SATISFIABLE" in proc.stdout

    def test_solve_dimacs_unsat_with_proof(self, tmp_path):
        cnf_path = tmp_path / "u.cnf"
        cnf_path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        proof_path = tmp_path / "u.drat"
        proc = run_example("solve_dimacs.py", str(cnf_path), "--proof", str(proof_path))
        assert proc.returncode == 20
        assert proof_path.exists()

    def test_policy_comparison(self):
        proc = run_example(
            "policy_comparison.py", "--instances", "2", "--budget", "20000"
        )
        assert proc.returncode == 0, proc.stderr
        assert "wins=" in proc.stdout

    def test_train_neuroselect(self, tmp_path):
        out = tmp_path / "w.npz"
        proc = run_example(
            "train_neuroselect.py",
            "--per-year", "1", "--epochs", "2", "--hidden-dim", "8",
            "--label-budget", "300", "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert out.exists()
        assert "accuracy" in proc.stdout

    def test_end_to_end_selection(self):
        proc = run_example(
            "end_to_end_selection.py",
            "--per-year", "1", "--epochs", "2", "--budget", "20000",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Table 3" in proc.stdout
        assert "median improvement" in proc.stdout

    def test_preprocess_and_certify(self):
        proc = run_example("preprocess_and_certify.py")
        assert proc.returncode == 0, proc.stderr
        assert "reconstructed model verified" in proc.stdout
        assert "DRAT proof checked" in proc.stdout

    def test_structure_analysis(self):
        proc = run_example("structure_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "modularity" in proc.stdout

    def test_batched_inference(self):
        proc = run_example("batched_inference.py")
        assert proc.returncode == 0, proc.stderr
        assert "batched inference" in proc.stdout

    def test_circuit_equivalence(self):
        proc = run_example("circuit_equivalence.py")
        assert proc.returncode == 0, proc.stderr
        assert "EQUIVALENT" in proc.stdout
        assert "NOT equivalent" in proc.stdout

    def test_serve_client(self):
        proc = run_example("serve_client.py")
        assert proc.returncode == 0, proc.stderr
        assert "amortized yes" in proc.stdout
        assert "DONE" in proc.stdout
