"""Tests for repro.parallel: runner, on-disk cache, progress aggregation.

The load-bearing properties: parallel execution returns exactly the
sequential results (the solver is deterministic per task), and a second
run over the same tasks is answered entirely from the cache — zero
re-solves.
"""

import pytest

from repro.cnf import random_ksat
from repro.parallel import (
    ParallelRunner,
    ProgressAggregator,
    ResultCache,
    SolveOutcome,
    SolveTask,
    execute_task,
    solve_cache_key,
)
from repro.selection import compare_policies, label_instances
from repro.selection.labeling import default_labeling_config
from repro.solver import Status


def make_tasks(count=4, seed_base=10, policy="default"):
    config = default_labeling_config()
    return [
        SolveTask(
            cnf=random_ksat(40, 170, seed=seed_base + i),
            policy=policy,
            config=config,
            max_conflicts=600,
            tag=f"t{i}",
        )
        for i in range(count)
    ]


class TestCacheKey:
    def test_key_is_stable(self):
        a, b = make_tasks(1)[0], make_tasks(1)[0]
        assert a.cache_key() == b.cache_key()

    def test_key_depends_on_policy(self):
        task = make_tasks(1)[0]
        other = make_tasks(1, policy="frequency")[0]
        assert task.cache_key() != other.cache_key()

    def test_key_depends_on_budget(self):
        config = default_labeling_config()
        cnf = random_ksat(20, 85, seed=3)
        a = SolveTask(cnf=cnf, config=config, max_conflicts=100)
        b = SolveTask(cnf=cnf, config=config, max_conflicts=200)
        assert a.cache_key() != b.cache_key()

    def test_key_depends_on_formula(self):
        config = default_labeling_config()
        a = SolveTask(cnf=random_ksat(20, 85, seed=3), config=config)
        b = SolveTask(cnf=random_ksat(20, 85, seed=4), config=config)
        assert a.cache_key() != b.cache_key()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = make_tasks(1)[0]
        outcome = execute_task(task)
        key = task.cache_key()
        cache.put(key, outcome.as_payload())
        restored = SolveOutcome.from_payload(cache.get(key))
        assert restored.status is outcome.status
        assert restored.propagations == outcome.propagations
        assert restored.model == outcome.model
        assert restored.cached

    def test_missing_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json")
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "0" * 62, {"policy": "default"})
        cache.put("bb" + "0" * 62, {"policy": "default"})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestParallelRunner:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)

    def test_serial_matches_direct_execution(self):
        tasks = make_tasks(3)
        direct = [execute_task(t) for t in tasks]
        ran = ParallelRunner(workers=1).run(make_tasks(3))
        for a, b in zip(direct, ran):
            assert a.status is b.status
            assert a.propagations == b.propagations
            assert a.tag == b.tag

    def test_parallel_matches_serial(self):
        serial = ParallelRunner(workers=1).run(make_tasks(6))
        parallel = ParallelRunner(workers=4).run(make_tasks(6))
        assert [o.tag for o in parallel] == [o.tag for o in serial]
        for a, b in zip(serial, parallel):
            assert a.status is b.status
            assert a.propagations == b.propagations
            assert a.conflicts == b.conflicts

    def test_second_run_hits_cache_with_zero_resolves(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        tasks = make_tasks(4)
        first = ParallelRunner(workers=2, cache_dir=cache_dir)
        first_outcomes = first.run(tasks)
        assert first.last_stats.executed == len(tasks)
        assert first.last_stats.cache_hits == 0

        # Second run: every task must come from disk.  Re-solving would
        # call execute_task, which is rigged to explode.
        import repro.parallel.runner as runner_module

        def boom(task):  # pragma: no cover - only runs on regression
            raise AssertionError("cache miss: task was re-solved")

        monkeypatch.setattr(runner_module, "execute_task", boom)
        second = ParallelRunner(workers=1, cache_dir=cache_dir)
        second_outcomes = second.run(make_tasks(4))
        assert second.last_stats.executed == 0
        assert second.last_stats.cache_hits == len(tasks)
        for a, b in zip(first_outcomes, second_outcomes):
            assert b.cached and not a.cached
            assert a.status is b.status
            assert a.propagations == b.propagations

    def test_cached_sat_models_still_check(self, tmp_path):
        cache_dir = tmp_path / "cache"
        tasks = make_tasks(4, seed_base=50)
        ParallelRunner(workers=1, cache_dir=cache_dir).run(tasks)
        cached = ParallelRunner(workers=1, cache_dir=cache_dir).run(
            make_tasks(4, seed_base=50)
        )
        for task, outcome in zip(tasks, cached):
            if outcome.status is Status.SATISFIABLE:
                assert task.cnf.check_model(outcome.model)

    def test_progress_aggregator_counts(self):
        progress = ProgressAggregator()
        runner = ParallelRunner(workers=1, progress=progress)
        runner.run(make_tasks(3))
        summary = progress.summary()
        assert summary["done"] == 3
        assert summary["executed"] == 3
        assert summary["cache_hits"] == 0
        assert summary["by_policy"] == {"default": 3}
        assert summary["propagations"] > 0

    def test_progress_callback_fires(self):
        seen = []
        progress = ProgressAggregator(callback=lambda d, t, o: seen.append((d, t)))
        ParallelRunner(workers=1, progress=progress).run(make_tasks(2))
        assert seen == [(1, 2), (2, 2)]


class TestLabelingIntegration:
    def test_label_instances_matches_compare_policies(self):
        cnfs = [random_ksat(40, 170, seed=s) for s in (7, 8, 9)]
        serial = [compare_policies(c, max_conflicts=600) for c in cnfs]
        batched = label_instances(cnfs, max_conflicts=600, workers=1)
        assert [c.label for c in batched] == [c.label for c in serial]
        assert [c.default_propagations for c in batched] == [
            c.default_propagations for c in serial
        ]
        assert [c.frequency_propagations for c in batched] == [
            c.frequency_propagations for c in serial
        ]

    def test_label_instances_parallel_and_cached(self, tmp_path):
        cnfs = [random_ksat(40, 170, seed=s) for s in (21, 22, 23, 24)]
        cache_dir = tmp_path / "labels"
        parallel = label_instances(
            cnfs, max_conflicts=600, workers=4, cache_dir=cache_dir
        )
        serial = label_instances(cnfs, max_conflicts=600, workers=1)
        assert [c.label for c in parallel] == [c.label for c in serial]

        runner = ParallelRunner(workers=1, cache_dir=cache_dir)
        relabelled = label_instances(cnfs, max_conflicts=600, runner=runner)
        assert runner.last_stats.executed == 0
        assert runner.last_stats.cache_hits == 2 * len(cnfs)
        assert [c.label for c in relabelled] == [c.label for c in serial]


class TestDatasetAndSuiteIntegration:
    def test_build_dataset_parallel_matches_serial(self):
        from repro.selection import build_dataset

        serial = build_dataset(instances_per_year=2, max_conflicts=300)
        parallel = build_dataset(instances_per_year=2, max_conflicts=300, workers=2)
        assert [i.label for i in serial.all_instances()] == [
            i.label for i in parallel.all_instances()
        ]
        assert [i.family for i in serial.all_instances()] == [
            i.family for i in parallel.all_instances()
        ]

    def test_run_suite_parallel_matches_serial(self, tmp_path):
        from repro.bench import run_suite

        cnfs = [random_ksat(40, 170, seed=s) for s in (31, 32, 33)]
        serial = run_suite(cnfs, "default", max_propagations=20_000)
        parallel = run_suite(
            cnfs, "default", max_propagations=20_000,
            workers=3, cache_dir=tmp_path / "suite",
        )
        assert [r.status for r in serial] == [r.status for r in parallel]
        assert [r.propagations for r in serial] == [r.propagations for r in parallel]
        assert [r.name for r in serial] == [r.name for r in parallel]
