"""Tests for the queryable run store (``repro.store``).

Pins the three contracts the store ships with:

* **auto-registration** — every traced CLI run (solve, dataset, bench,
  fuzz) lands in the store with the right kind/status/commit, with no
  caller changes, and ``repro query runs --json`` round-trips them;
* **quarantine-and-continue** — corrupt, truncated, or
  schema-version-skewed inputs never abort a batch ingest; they are
  quarantined with a reason and every good input still lands;
* **trend gating** — ``repro query bench-trend`` reproduces the
  committed ``BENCH_bcp.json`` aggregates, and a synthetically
  degraded newer measurement makes ``repro trend --check-regression``
  exit nonzero.
"""

import copy
import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.cnf import CNF, write_dimacs_file
from repro.obs import read_trace, start_run
from repro.store import (
    IngestReport,
    RunStore,
    StoreError,
    StoreIngestError,
    bench_trend,
    check_regression,
    format_rows,
    resolve_auto_store,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_BASELINE = REPO_ROOT / "BENCH_bcp.json"


@pytest.fixture(autouse=True)
def _clean_store_env(monkeypatch):
    """Tests control the store location explicitly."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "sat.cnf"
    write_dimacs_file(CNF([[1, 2], [-2, 3], [-1, -3]]), path)
    return str(path)


def _write_trace(path, lines):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def _event(event, seq, run_id="r-abcdef123456", **fields):
    record = {"event": event, "ts": float(seq), "run_id": run_id,
              "seq": seq}
    record.update(fields)
    return json.dumps(record)


def _manifest(run_id="r-abcdef123456", command="solve", version=1):
    return {
        "run_id": run_id,
        "command": command,
        "git": "deadbeef",
        "policy": "default",
        "config": {"seed": 7},
        "created_unix": 1700000000.0,
        "trace_format_version": version,
    }


# ---------------------------------------------------------------------------
# Acceptance: traced CLI runs of every kind auto-ingest and round-trip


class TestAutoIngestEndToEnd:
    def test_four_kinds_round_trip_through_query(
        self, tmp_path, sat_file, capsys
    ):
        trace_dir = tmp_path / "traces"
        store_path = trace_dir / "runstore.sqlite"

        assert main(["solve", sat_file, "--trace", str(trace_dir)]) == 10
        assert main([
            "dataset", "--out", str(tmp_path / "ds.json"),
            "--per-year", "1", "--label-budget", "100",
            "--trace", str(trace_dir),
        ]) == 0
        assert main([
            "bench", "--instances", "1", "--max-propagations", "2000",
            "--trace", str(trace_dir),
        ]) == 0
        assert main([
            "fuzz", "--seeds", "2", "--budget", "500", "--mutants", "1",
            "--trace", str(trace_dir),
        ]) == 0
        capsys.readouterr()

        assert main([
            "query", "runs", "--store", str(store_path), "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["kind"] for row in rows} == {
            "solve", "dataset", "bench", "fuzz"
        }
        assert all(row["status"] == "ok" for row in rows)
        by_kind = {row["kind"]: row for row in rows}
        assert by_kind["solve"]["exit_code"] == 10  # SAT convention
        assert by_kind["fuzz"]["exit_code"] == 0
        # Every run of this process carries the same source commit.
        assert len({row["commit_ref"] for row in rows}) == 1
        assert all(row["events"] >= 2 for row in rows)  # start + end

        # Metrics and artifacts round-trip too.
        with RunStore(store_path) as store:
            solve_id = by_kind["solve"]["run_id"]
            names = {m["name"] for m in store.metrics(run_id=solve_id)}
            assert "events.run-start" in names
            assert store.trace_path(solve_id) is not None
            assert store.run(solve_id)["config"]["policy"] == "default"
            assert store.quarantined() == []

    def test_registration_precedes_ingest(self, tmp_path):
        trace_dir = tmp_path / "t"
        observer = start_run(str(trace_dir), "solve", argv=[], config={})
        store_path = resolve_auto_store(trace_dir)
        with RunStore(store_path) as store:
            (row,) = store.runs()
            assert row["status"] == "running"  # visible before finish
        observer.finish(exit_code=0)
        with RunStore(store_path) as store:
            (row,) = store.runs()
            assert row["status"] == "ok"
            assert row["exit_code"] == 0

    def test_failed_and_incomplete_statuses(self, tmp_path):
        trace_dir = tmp_path / "t"
        crashed = start_run(str(trace_dir), "solve", argv=[], config={})
        crashed.event("solve-start", variables=1, clauses=1)
        crashed.close()  # killed before finish(): no run-end, no ingest
        failed = start_run(str(trace_dir), "chaos", argv=[], config={})
        failed.finish(exit_code=1)

        store_path = resolve_auto_store(trace_dir)
        with RunStore(store_path) as store:
            store.ingest_trace(crashed.sink.path)
            by_kind = {row["kind"]: row for row in store.runs()}
        assert by_kind["solve"]["status"] == "incomplete"
        assert by_kind["chaos"]["status"] == "failed"
        assert by_kind["chaos"]["exit_code"] == 1

    def test_repro_store_env_overrides_and_disables(
        self, tmp_path, monkeypatch
    ):
        elsewhere = tmp_path / "central.sqlite"
        monkeypatch.setenv("REPRO_STORE", str(elsewhere))
        start_run(str(tmp_path / "t"), "solve").finish(exit_code=0)
        with RunStore(elsewhere) as store:
            assert len(store.runs()) == 1

        monkeypatch.setenv("REPRO_STORE", "off")
        assert resolve_auto_store(tmp_path / "t2") is None
        observer = start_run(str(tmp_path / "t2"), "solve")
        assert observer.store_path is None
        observer.finish(exit_code=0)
        assert not (tmp_path / "t2" / "runstore.sqlite").exists()

    def test_reingest_is_idempotent(self, tmp_path):
        trace_dir = tmp_path / "t"
        observer = start_run(str(trace_dir), "solve")
        observer.finish(exit_code=0)
        store_path = resolve_auto_store(trace_dir)
        with RunStore(store_path) as store:
            before = store.counts()
            assert store.ingest_trace(observer.sink.path) == "updated"
            assert store.counts() == before  # replaced, not duplicated


# ---------------------------------------------------------------------------
# Satellite: collision-safe filenames + structured read_trace warnings


class TestFilenamesAndWarnings:
    def test_manifest_filenames_embed_run_id_and_pid(self, tmp_path):
        a = start_run(str(tmp_path), "solve")
        b = start_run(str(tmp_path), "solve")
        assert a.sink.path != b.sink.path
        for observer in (a, b):
            assert f"-p{os.getpid()}." in observer.sink.path.name
            assert observer.run_id in observer.sink.path.name
            assert observer.manifest_path.exists()
            observer.finish(exit_code=0)

    def test_read_trace_unpacks_as_pair_and_carries_warnings(
        self, tmp_path
    ):
        trace = _write_trace(tmp_path / "torn.jsonl", [
            _event("run-start", 0, manifest=_manifest(), format_version=1),
            "",
            _event("run-end", 1, exit_code=0),
            '{"event": "solve-end", "ts": 2.0, "run',  # torn final line
        ])
        events, errors = read_trace(trace)  # historical 2-tuple unpack
        assert len(events) == 2
        assert errors == []
        loaded = read_trace(trace)
        assert loaded.events == events
        assert loaded.warning_count == 2
        assert [w["reason"] for w in loaded.warnings] == [
            "blank-line", "torn-final-line"
        ]
        assert all(
            isinstance(w["line"], int) and w["detail"]
            for w in loaded.warnings
        )

    def test_interior_garbage_is_an_error_not_a_warning(self, tmp_path):
        trace = _write_trace(tmp_path / "bad.jsonl", [
            _event("run-start", 0, manifest=_manifest()),
            "not json at all",
            _event("run-end", 1, exit_code=0),
        ])
        loaded = read_trace(trace)
        assert loaded.warning_count == 0
        assert len(loaded.errors) == 1
        with pytest.raises(ValueError):
            read_trace(trace, strict=True)

    def test_report_surfaces_tolerated_warnings(self, tmp_path, capsys):
        from repro.obs import render_report, summarize_traces

        trace = _write_trace(tmp_path / "torn.jsonl", [
            _event("run-start", 0, manifest=_manifest(), format_version=1),
            _event("run-end", 1, exit_code=0),
            '{"torn": ',
        ])
        summary = summarize_traces([trace])
        assert summary["trace_warnings"] == 1
        assert "tolerated trace warnings" in render_report(summary)

    def test_store_counts_warnings_per_run(self, tmp_path):
        trace = _write_trace(tmp_path / "torn.jsonl", [
            _event("run-start", 0, manifest=_manifest(), format_version=1),
            _event("run-end", 1, exit_code=0),
            '{"torn": ',
        ])
        with RunStore(tmp_path / "s.sqlite") as store:
            store.ingest_trace(trace)
            (row,) = store.runs()
            assert row["warnings"] == 1


# ---------------------------------------------------------------------------
# Satellite: quarantine-and-continue ingest of damaged inputs


class TestQuarantine:
    def _good_trace(self, tmp_path, run_id="r-feedfacecafe"):
        return _write_trace(tmp_path / f"{run_id}.jsonl", [
            _event("run-start", 0, run_id=run_id,
                   manifest=_manifest(run_id=run_id), format_version=1),
            _event("run-end", 1, run_id=run_id, exit_code=0),
        ])

    def test_corrupt_trace_quarantined(self, tmp_path):
        corrupt = _write_trace(tmp_path / "corrupt.jsonl", [
            "\x00\x01garbage", "{{{{", "more garbage",
        ])
        with RunStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(StoreIngestError) as excinfo:
                store.ingest_trace(corrupt)
            assert excinfo.value.reason == "empty-trace"

    def test_schema_version_skew_quarantined(self, tmp_path):
        skewed = _write_trace(tmp_path / "future.jsonl", [
            _event("run-start", 0, manifest=_manifest(version=99),
                   format_version=99),
            _event("run-end", 1, exit_code=0),
        ])
        with RunStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(StoreIngestError) as excinfo:
                store.ingest_trace(skewed)
            assert excinfo.value.reason == "schema-version-skew"

    def test_missing_manifest_quarantined(self, tmp_path):
        orphan = _write_trace(tmp_path / "orphan.jsonl", [
            _event("solve-start", 0, variables=1, clauses=1),
            _event("solve-end", 1),
        ])
        with RunStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(StoreIngestError) as excinfo:
                store.ingest_trace(orphan)
            assert excinfo.value.reason == "missing-manifest"

    def test_batch_never_aborts(self, tmp_path):
        good = self._good_trace(tmp_path)
        corrupt = _write_trace(tmp_path / "corrupt.jsonl", ["{{{{", "::"])
        skewed = _write_trace(tmp_path / "future.jsonl", [
            _event("run-start", 0, manifest=_manifest(version=99),
                   format_version=99),
        ])
        truncated = _write_trace(tmp_path / "torn.jsonl", [
            _event("run-start", 0, run_id="r-0123456789ab",
                   manifest=_manifest(run_id="r-0123456789ab"),
                   format_version=1),
            '{"event": "run-end", "ts',  # killed writer
        ])
        bad_bench = tmp_path / "BENCH_broken.json"
        bad_bench.write_text("{not json")

        with RunStore(tmp_path / "s.sqlite") as store:
            report = store.ingest_many(
                [corrupt, good, skewed, bad_bench, truncated]
            )
            assert isinstance(report, IngestReport)
            assert report.ingested == 2      # good + truncated
            assert report.quarantined == 3
            assert report.warnings == 1      # the torn final line
            assert len(report.problems) == 3
            rows = store.runs()
            assert len(rows) == 2
            quarantine = store.quarantined()
            assert {q["reason"] for q in quarantine} == {
                "empty-trace", "schema-version-skew", "corrupt-bench",
            }
            assert all(q["path"] and q["detail"] is not None
                       for q in quarantine)

    def test_manifest_siblings_skipped_in_batch(self, tmp_path):
        observer = start_run(str(tmp_path / "t"), "solve")
        observer.finish(exit_code=0)
        inputs = sorted((tmp_path / "t").glob("solve-*"))
        assert len(inputs) == 2  # trace + manifest
        with RunStore(tmp_path / "s.sqlite") as store:
            report = store.ingest_many(inputs)
            assert report.total == 1
            assert report.quarantined == 0

    def test_newer_store_schema_refused(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with RunStore(path) as store:
            store._conn.execute(
                "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
            )
            store._conn.commit()
        with pytest.raises(StoreError):
            RunStore(path)


# ---------------------------------------------------------------------------
# Acceptance: bench-trend reproduces BENCH_bcp.json; regression gate fires


class TestBenchTrend:
    def _baseline_payload(self):
        return json.loads(BENCH_BASELINE.read_text())

    def test_trend_reproduces_committed_aggregates(self, tmp_path, capsys):
        store_path = tmp_path / "s.sqlite"
        with RunStore(store_path) as store:
            store.ingest_bench(BENCH_BASELINE)
        assert main([
            "query", "bench-trend", "--store", str(store_path),
            "--metric", "props_per_sec", "--workload", "aggregate",
            "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        aggregate = self._baseline_payload()["bcp"]["aggregate"]
        by_engine = {row["engine"]: row["value"] for row in rows}
        for engine in ("legacy", "new", "arena"):
            assert by_engine[engine] == pytest.approx(aggregate[engine])
        # The derived speedup series reproduces the committed ratio of
        # aggregate throughputs.
        with RunStore(store_path) as store:
            speedups = bench_trend(
                store, metric="speedup", workload="aggregate"
            )
        (point,) = speedups
        assert point["value"] == pytest.approx(
            aggregate["arena"] / aggregate["new"], rel=1e-3
        )

    def test_degraded_bench_fails_regression_gate(self, tmp_path, capsys):
        baseline = self._baseline_payload()
        baseline.setdefault("created_unix", 1700000000.0)
        b1 = tmp_path / "BENCH_base.json"
        b1.write_text(json.dumps(baseline))

        degraded = copy.deepcopy(baseline)
        for cell in degraded["bcp"]["workloads"].values():
            cell["arena"]["seconds"] *= 3.0
            cell["arena"]["props_per_sec"] /= 3.0
        degraded["bcp"]["aggregate"]["arena"] /= 3.0
        degraded["created_unix"] = baseline["created_unix"] + 100.0
        b2 = tmp_path / "BENCH_degraded.json"
        b2.write_text(json.dumps(degraded))

        store_path = tmp_path / "s.sqlite"
        assert main([
            "trend", str(b1), str(b2), "--store", str(store_path),
            "--check-regression",
        ]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "aggregate" in err

        # A healthy re-measurement (identical numbers, newer stamp)
        # passes the same gate in a fresh store.
        healthy = copy.deepcopy(baseline)
        healthy["created_unix"] = degraded["created_unix"] + 100.0
        b3 = tmp_path / "BENCH_healthy.json"
        b3.write_text(json.dumps(healthy))
        assert main([
            "trend", str(b1), str(b3),
            "--store", str(tmp_path / "fresh.sqlite"),
            "--check-regression",
        ]) == 0
        assert "trend gate" in capsys.readouterr().err

    def test_per_workload_gate_widens(self, tmp_path):
        baseline = self._baseline_payload()
        baseline.setdefault("created_unix", 1700000000.0)
        degraded = copy.deepcopy(baseline)
        # Degrade exactly one workload: the aggregate-only default gate
        # misses it, --per-workload catches it.
        cell = degraded["bcp"]["workloads"]["3sat"]
        cell["arena"]["seconds"] *= 3.0
        cell["arena"]["props_per_sec"] /= 3.0
        degraded["created_unix"] = baseline["created_unix"] + 100.0
        b1 = tmp_path / "a.json"
        b1.write_text(json.dumps(baseline))
        b2 = tmp_path / "b.json"
        b2.write_text(json.dumps(degraded))
        with RunStore(tmp_path / "s.sqlite") as store:
            store.ingest_many([b1, b2])
            assert check_regression(store).ok
            widened = check_regression(store, per_workload=True)
            assert not widened.ok
            assert any("3sat" in failure for failure in widened.failures)

    def test_smoke_results_flagged_and_reingest_replaces(self, tmp_path):
        payload = self._baseline_payload()
        payload["smoke"] = True
        payload["created_unix"] = 1700000000.0
        path = tmp_path / "BENCH_bcp_smoke.json"
        path.write_text(json.dumps(payload))
        with RunStore(tmp_path / "s.sqlite") as store:
            count = store.ingest_bench(path)
            assert count == store.ingest_bench(path)  # idempotent
            rows = store.bench_rows(workload="aggregate")
            assert {row["engine"] for row in rows} >= {
                "legacy", "new", "arena"
            }
            assert all(row["smoke"] == 1 for row in rows)
            assert len(rows) == 3  # replaced, not appended


# ---------------------------------------------------------------------------
# Query CLI rendering, filters, and report-by-run-id


class TestQueryCLI:
    @pytest.fixture
    def populated(self, tmp_path):
        trace_dir = tmp_path / "t"
        observer = start_run(
            str(trace_dir), "solve", argv=["x"], config={}, policy="lbd"
        )
        observer.counter("solver.conflicts").inc(3)
        observer.finish(exit_code=10)
        return trace_dir / "runstore.sqlite", observer.run_id

    def test_table_csv_json_formats(self, populated, capsys):
        store_path, run_id = populated
        assert main(["query", "runs", "--store", str(store_path)]) == 0
        table = capsys.readouterr().out
        assert run_id in table
        assert "created" in table and "----" in table

        assert main([
            "query", "runs", "--store", str(store_path), "--format", "csv",
        ]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.splitlines()[0].startswith("run_id,kind,status")

        assert main([
            "query", "metrics", "--store", str(store_path),
            "--name", "solver.*", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == [{
            "run_id": run_id, "kind": "solve", "name": "solver.conflicts",
            "metric_kind": "counter", "value": 3.0,
        }]

    def test_filters_and_limit(self, populated, capsys):
        store_path, run_id = populated
        assert main([
            "query", "runs", "--store", str(store_path),
            "--kind", "solve", "--status", "ok", "--since", "1d",
            "--limit", "5", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["run_id"] for row in rows] == [run_id]
        assert main([
            "query", "runs", "--store", str(store_path),
            "--kind", "chaos", "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_traces_lists_artifacts(self, populated, capsys):
        store_path, run_id = populated
        assert main([
            "query", "traces", "--store", str(store_path), "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1 and rows[0]["role"] == "trace"
        assert rows[0]["sha256"] and rows[0]["bytes"] > 0
        assert main([
            "query", "traces", "--store", str(store_path),
            "--role", "all", "--json",
        ]) == 0
        roles = {row["role"] for row in json.loads(capsys.readouterr().out)}
        assert roles == {"trace", "manifest"}

    def test_report_accepts_run_id_and_latest(self, populated, capsys):
        store_path, run_id = populated
        assert main([
            "report", run_id, "--store", str(store_path),
        ]) == 0
        assert run_id in capsys.readouterr().out
        assert main([
            "report", "--latest", "kind=solve", "--store", str(store_path),
        ]) == 0
        assert run_id in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["report", "r-nosuchrun000", "--store", str(store_path)])
        with pytest.raises(SystemExit):
            main(["report", "--latest", "kind=nope",
                  "--store", str(store_path)])

    def test_missing_store_exits_with_guidance(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no run store"):
            main(["query", "runs"])

    def test_parse_when_forms(self):
        from repro.cli import _parse_when

        assert _parse_when(None) is None
        assert _parse_when("1700000000") == 1700000000.0
        assert abs(_parse_when("1h") - (time.time() - 3600)) < 5
        parsed = _parse_when("2026-01-02")
        assert time.localtime(parsed).tm_mday == 2
        with pytest.raises(SystemExit):
            _parse_when("next tuesday")

    def test_format_rows_renderer(self):
        rows = [
            {"name": "a", "value": 1.5}, {"name": "bb", "value": None},
        ]
        table = format_rows(rows, ("name", "value"), "table")
        assert table.splitlines()[0].startswith("name")
        assert "1.5" in table
        csv_text = format_rows(rows, ("name", "value"), "csv")
        assert csv_text.splitlines()[0] == "name,value"
        parsed = json.loads(format_rows(rows, ("name",), "json"))
        assert parsed == [{"name": "a"}, {"name": "bb"}]
        assert format_rows([], ("x",), "table") == "(no rows)"
        with pytest.raises(ValueError):
            format_rows(rows, ("name",), "yaml")


# ---------------------------------------------------------------------------
# Fuzz corpus artifact registration


class TestFuzzCorpusArtifacts:
    def test_corpus_entries_registered(self, tmp_path, monkeypatch):
        from repro.fuzz.oracles import Discrepancy
        from repro.fuzz.shrink import FailureCorpus

        store_path = tmp_path / "s.sqlite"
        monkeypatch.setenv("REPRO_STORE", str(store_path))
        corpus = FailureCorpus(tmp_path / "corpus")
        corpus.add(
            CNF([[1, 2], [-1, -2]]),
            Discrepancy(
                oracle="dpll", kind="status", case="c0",
                expected="SATISFIABLE", observed="UNSATISFIABLE",
            ),
        )
        with RunStore(store_path) as store:
            roles = {row["role"]: row for row in store.artifacts()}
            assert set(roles) == {"fuzz-repro", "fuzz-repro-manifest"}
            assert roles["fuzz-repro"]["path"].endswith(".cnf")
