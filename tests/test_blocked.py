"""Tests for blocked clause elimination."""

from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.simplify import Preprocessor, solve_with_preprocessing
from repro.simplify.blocked import _blocks, eliminate_blocked_clauses
from repro.simplify.elimination import ModelReconstructor
from repro.solver import Status, brute_force_status


def fs(*lits):
    return frozenset(lits)


class TestBlocksPredicate:
    def test_tautological_resolvents_block(self):
        # (1 2) vs (-1 -2): resolvent on 1 is (2 -2) — tautology.
        assert _blocks(fs(1, 2), 1, [fs(-1, -2)])

    def test_non_tautological_resolvent_does_not_block(self):
        assert not _blocks(fs(1, 2), 1, [fs(-1, 3)])

    def test_no_complement_occurrences_blocks_trivially(self):
        # Pure literal: blocked with an empty complement list.
        assert _blocks(fs(1, 2), 1, [])


class TestEliminateBlockedClauses:
    def test_classic_example_cascades(self):
        rec = ModelReconstructor()
        clauses = [fs(1, 2), fs(-1, -2), fs(2, 3)]
        out, removed = eliminate_blocked_clauses(clauses, rec)
        assert removed == 3
        assert out == []
        model = rec.extend([None, None, None, None])
        assert CNF([[1, 2], [-1, -2], [2, 3]]).check_model(model)

    def test_pure_literal_clause_removed(self):
        rec = ModelReconstructor()
        clauses = [fs(1, 2), fs(2, 3)]  # every literal pure
        out, removed = eliminate_blocked_clauses(clauses, rec)
        assert removed == 2

    def test_unblocked_core_kept(self):
        rec = ModelReconstructor()
        # A small unsatisfiable core is never blocked.
        clauses = [fs(1, 2), fs(1, -2), fs(-1, 2), fs(-1, -2)]
        out, removed = eliminate_blocked_clauses(clauses, rec)
        assert removed == 0
        assert set(out) == set(clauses)

    def test_occurrence_cap_skips_heavy_literals(self):
        rec = ModelReconstructor()
        heavy = [fs(-1, i) for i in range(2, 30)]
        clauses = [fs(1, 30)] + heavy
        out, removed = eliminate_blocked_clauses(
            clauses, rec, max_occurrences=5
        )
        # (1, 30) cannot be checked on 1 (too many -1 clauses) but 30 is
        # pure, so it still goes; the heavy clauses contain pure literals
        # too.  Just assert soundness-relevant bits: nothing crashes and
        # removal is recorded on the stack.
        assert removed == len(clauses) - len(out)

    def test_reconstruction_repairs_falsified_clause(self):
        rec = ModelReconstructor()
        clauses = [fs(1, 2), fs(-1, -2)]
        out, removed = eliminate_blocked_clauses(clauses, rec)
        assert removed >= 1
        # Hand the replay a model that falsifies the removed clause(s).
        model = rec.extend([None, False, False])
        assert CNF([[1, 2], [-1, -2]]).check_model(model)


class TestPipeline:
    def test_stats_and_flag(self):
        cnf = CNF([[1, 2], [-1, -2], [2, 3]])
        # Isolate BCE: other passes (equivalence substitution, BVE)
        # would otherwise consume this tiny formula first.
        only_bce = Preprocessor(
            enable_blocked_clauses=True,
            enable_subsumption=False,
            enable_strengthening=False,
            enable_probing=False,
            enable_elimination=False,
            enable_equivalences=False,
            enable_xor_gauss=False,
        )
        on = only_bce.preprocess(cnf)
        off = Preprocessor().preprocess(cnf)
        assert on.stats.blocked_clauses > 0
        assert off.stats.blocked_clauses == 0

    def test_solve_with_bce_reconstructs(self):
        cnf = random_ksat(20, 60, seed=1)  # sparse: plenty of blocked clauses
        result = solve_with_preprocessing(
            cnf, preprocessor=Preprocessor(enable_blocked_clauses=True)
        )
        if result.status is Status.SATISFIABLE:
            assert cnf.check_model(result.model)


@settings(max_examples=120, deadline=None)
@given(st.integers(min_value=0, max_value=20_000))
def test_property_bce_preserves_satisfiability(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 8)
    m = rng.randint(1, 28)
    cnf = random_ksat(n, m, k=min(3, n), seed=seed)
    expected = brute_force_status(cnf)
    result = solve_with_preprocessing(
        cnf, preprocessor=Preprocessor(enable_blocked_clauses=True)
    )
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
