"""Tests for watched-literal unit propagation."""

from repro.solver.assignment import Trail
from repro.solver.clause_db import SolverClause
from repro.solver.propagate import Propagator
from repro.solver.statistics import SolverStatistics
from repro.solver.types import FALSE, TRUE, UNASSIGNED, encode
from repro.solver.watchers import WatchLists


def make_engine(num_vars):
    trail = Trail(num_vars)
    watches = WatchLists(num_vars)
    stats = SolverStatistics()
    return trail, watches, Propagator(trail, watches, stats), stats


def attach(watches, lits):
    clause = SolverClause([encode(l) for l in lits])
    watches.attach(clause)
    return clause


class TestPropagation:
    def test_unit_propagation_chain(self):
        trail, watches, prop, stats = make_engine(3)
        attach(watches, [-1, 2])
        attach(watches, [-2, 3])
        trail.assign(encode(1), None)
        conflict = prop.propagate()
        assert conflict is None
        assert trail.value_var(2) == TRUE
        assert trail.value_var(3) == TRUE
        assert stats.propagations == 2

    def test_no_propagation_when_satisfied(self):
        trail, watches, prop, stats = make_engine(3)
        attach(watches, [1, 2])
        trail.assign(encode(1), None)
        prop.propagate()
        assert trail.value_var(2) == UNASSIGNED
        assert stats.propagations == 0

    def test_watch_relocation(self):
        trail, watches, prop, _ = make_engine(4)
        clause = attach(watches, [1, 2, 3, 4])
        trail.assign(encode(-1), None)
        prop.propagate()
        # Watch moved off the falsified literal; no assignment forced.
        assert trail.value_var(2) == UNASSIGNED
        assert clause in watches.watchers_of(clause.lits[0]) or clause in watches.watchers_of(clause.lits[1])

    def test_conflict_detection(self):
        trail, watches, prop, _ = make_engine(2)
        conflict_clause = attach(watches, [1, 2])
        trail.assign(encode(-1), None)
        trail.assign(encode(-2), None)
        conflict = prop.propagate()
        assert conflict is conflict_clause

    def test_conflict_via_two_units(self):
        trail, watches, prop, _ = make_engine(3)
        attach(watches, [-1, 2])
        attach(watches, [-1, -2])
        trail.assign(encode(1), None)
        conflict = prop.propagate()
        assert conflict is not None

    def test_reason_recorded_with_implied_literal_first(self):
        trail, watches, prop, _ = make_engine(3)
        clause = attach(watches, [-1, -2, 3])
        trail.assign(encode(1), None)
        trail.assign(encode(2), None)
        prop.propagate()
        assert trail.value_var(3) == TRUE
        assert trail.reasons[3] is clause
        assert clause.lits[0] == encode(3)

    def test_garbage_clauses_never_propagate_once_detached(self):
        # Contract: garbage is detached before propagation runs (as
        # ReduceScheduler.reduce does), so the hot loop never sees it.
        trail, watches, prop, _ = make_engine(2)
        clause = attach(watches, [-1, 2])
        clause.garbage = True
        watches.detach_garbage()
        trail.assign(encode(1), None)
        assert prop.propagate() is None
        assert trail.value_var(2) == UNASSIGNED


class TestFrequencyCounters:
    def test_propagated_variables_counted(self):
        trail, watches, prop, _ = make_engine(3)
        attach(watches, [-1, 2])
        attach(watches, [-2, 3])
        trail.assign(encode(1), None)
        prop.propagate()
        assert prop.frequency[1] == 0  # decision, not propagation
        assert prop.frequency[2] == 1
        assert prop.frequency[3] == 1

    def test_lifetime_survives_reset(self):
        trail, watches, prop, _ = make_engine(2)
        attach(watches, [-1, 2])
        trail.assign(encode(1), None)
        prop.propagate()
        prop.reset_frequencies()
        assert prop.frequency[2] == 0
        assert prop.lifetime_frequency[2] == 1

    def test_max_frequency(self):
        trail, watches, prop, _ = make_engine(3)
        attach(watches, [-1, 2])
        attach(watches, [-1, 3])
        trail.assign(encode(1), None)
        prop.propagate()
        assert prop.max_frequency() == 1
