"""Tests for the CNF instance generators (determinism, structure, status)."""

import pytest

from repro.cnf import (
    GENERATOR_FAMILIES,
    GeneratorSpec,
    cardinality_conflict,
    community_sat,
    generate_family,
    graph_coloring,
    parity_chain,
    pigeonhole,
    random_ksat,
)
from repro.solver import Status, dpll_solve


class TestRandomKsat:
    def test_shape(self):
        cnf = random_ksat(20, 50, k=3, seed=0)
        assert cnf.num_vars == 20
        assert cnf.num_clauses == 50
        assert all(len(c) == 3 for c in cnf.clauses)

    def test_deterministic_per_seed(self):
        a = random_ksat(15, 40, seed=7)
        b = random_ksat(15, 40, seed=7)
        assert [c.literals for c in a.clauses] == [c.literals for c in b.clauses]

    def test_different_seeds_differ(self):
        a = random_ksat(15, 40, seed=1)
        b = random_ksat(15, 40, seed=2)
        assert [c.literals for c in a.clauses] != [c.literals for c in b.clauses]

    def test_distinct_variables_within_clause(self):
        cnf = random_ksat(10, 100, seed=3)
        for clause in cnf.clauses:
            variables = [abs(lit) for lit in clause.literals]
            assert len(set(variables)) == len(variables)

    def test_rejects_too_few_variables(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [1, 2, 3, 4])
    def test_unsatisfiable(self, holes):
        status, _ = dpll_solve(pigeonhole(holes))
        assert status is Status.UNSATISFIABLE

    def test_clause_counts(self):
        holes = 3
        cnf = pigeonhole(holes)
        pigeons = holes + 1
        expected = pigeons + holes * (pigeons * (pigeons - 1)) // 2
        assert cnf.num_clauses == expected
        assert cnf.num_vars == pigeons * holes

    def test_rejects_zero_holes(self):
        with pytest.raises(ValueError):
            pigeonhole(0)


class TestGraphColoring:
    def test_gnp_structure(self):
        cnf = graph_coloring(6, 3, edge_prob=1.0, seed=0)
        # Complete graph K6 is not 3-colourable.
        status, _ = dpll_solve(cnf)
        assert status is Status.UNSATISFIABLE

    def test_empty_graph_colorable(self):
        cnf = graph_coloring(5, 2, edge_prob=0.0, seed=0)
        status, _ = dpll_solve(cnf)
        assert status is Status.SATISFIABLE

    def test_flat_mode_always_satisfiable(self):
        for seed in range(3):
            cnf = graph_coloring(15, 3, edge_prob=2.0, seed=seed, mode="flat")
            status, _ = dpll_solve(cnf)
            assert status is Status.SATISFIABLE

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            graph_coloring(5, 2, mode="weird")

    def test_rejects_zero_colors(self):
        with pytest.raises(ValueError):
            graph_coloring(5, 0)


class TestParityChain:
    def test_contradiction_is_unsat(self):
        for seed in range(3):
            cnf = parity_chain(6, seed=seed, contradiction=True)
            status, _ = dpll_solve(cnf)
            assert status is Status.UNSATISFIABLE

    def test_agreement_is_sat(self):
        for seed in range(3):
            cnf = parity_chain(6, seed=seed, contradiction=False)
            status, _ = dpll_solve(cnf)
            assert status is Status.SATISFIABLE

    def test_deterministic(self):
        a = parity_chain(8, seed=4)
        b = parity_chain(8, seed=4)
        assert [c.literals for c in a.clauses] == [c.literals for c in b.clauses]

    def test_invalid_parity_rejected(self):
        with pytest.raises(ValueError):
            parity_chain(6, parity=2)

    def test_too_few_vars_rejected(self):
        with pytest.raises(ValueError):
            parity_chain(1)


class TestCommunitySat:
    def test_variable_count(self):
        cnf = community_sat(4, 10, 20, seed=0)
        assert cnf.num_vars == 40

    def test_intra_community_clauses_stay_local(self):
        cnf = community_sat(3, 10, 30, inter_clause_fraction=0.0, seed=1)
        for clause in cnf.clauses:
            communities = {(abs(lit) - 1) // 10 for lit in clause.literals}
            assert len(communities) == 1

    def test_rejects_tiny_communities(self):
        with pytest.raises(ValueError):
            community_sat(2, 2, 5, k=3)


class TestCardinalityConflict:
    def test_overconstrained_unsat(self):
        cnf = cardinality_conflict(8, overconstrained=True, seed=0)
        status, _ = dpll_solve(cnf)
        assert status is Status.UNSATISFIABLE

    def test_relaxed_sat(self):
        cnf = cardinality_conflict(8, overconstrained=False, seed=0)
        status, _ = dpll_solve(cnf)
        assert status is Status.SATISFIABLE

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            cardinality_conflict(2)


class TestFamilyRegistry:
    def test_all_families_registered(self):
        assert set(GENERATOR_FAMILIES) == {
            "random_ksat",
            "pigeonhole",
            "graph_coloring",
            "parity_chain",
            "community_sat",
            "cardinality_conflict",
        }

    def test_generate_family_counts_and_seeds(self):
        cnfs = generate_family("random_ksat", 3, base_seed=10, num_vars=10, num_clauses=20)
        assert len(cnfs) == 3
        # Consecutive seeds produce distinct formulas.
        texts = [tuple(c.literals for c in cnf.clauses) for cnf in cnfs]
        assert len(set(texts)) == 3

    def test_spec_build_and_name(self):
        spec = GeneratorSpec("pigeonhole", (("holes", 3),), seed=0)
        cnf = spec.build()
        assert cnf.num_vars == 12
        assert "pigeonhole" in spec.name
