"""Exercise exported result/record types by name (API completeness)."""

from repro import SolveResult
from repro.bench import EndToEndResult, SuiteStatistics, Table2Result
from repro.cnf import CNF, FormulaFeatures, extract_features
from repro.policies import POLICY_REGISTRY, DeletionPolicy, DefaultPolicy
from repro.selection import (
    DEFAULT_MAX_NODES,
    SelectionOutcome,
    TEST_YEAR,
    TRAIN_YEARS,
    TrainingHistory,
    YearStatistics,
)
from repro.simplify import Preprocessor, PreprocessResult, PreprocessStats
from repro.solver import ConflictAnalyzer, Solver, Status, WalkSAT, WalkSATResult
from repro.models import READOUTS, DirectedMessagePass


def test_solve_result_type():
    result = Solver(CNF([[1]])).solve()
    assert isinstance(result, SolveResult)
    assert result.is_sat and not result.is_unknown


def test_formula_features_type():
    assert isinstance(extract_features(CNF([[1, 2]])), FormulaFeatures)


def test_policy_registry_and_interface():
    assert set(POLICY_REGISTRY) == {"default", "frequency"}
    assert isinstance(DefaultPolicy(), DeletionPolicy)
    assert "default" in repr(DefaultPolicy())


def test_preprocess_result_types():
    result = Preprocessor().preprocess(CNF([[1, 2], [1]]))
    assert isinstance(result, PreprocessResult)
    assert isinstance(result.stats, PreprocessStats)


def test_walksat_result_type():
    result = WalkSAT(CNF([[1, 2]])).solve(max_flips=50)
    assert isinstance(result, WalkSATResult)
    assert result.satisfied


def test_conflict_analyzer_is_solver_component():
    from repro.solver import ArenaConflictAnalyzer, SolverConfig

    solver = Solver(CNF([[1, 2], [-1, 2]]))
    assert isinstance(solver.analyzer, ArenaConflictAnalyzer)
    solver = Solver(CNF([[1, 2], [-1, 2]]), config=SolverConfig(core="object"))
    assert isinstance(solver.analyzer, ConflictAnalyzer)


def test_year_split_constants():
    assert TEST_YEAR == 2022
    assert TRAIN_YEARS == (2016, 2017, 2018, 2019, 2020, 2021)
    assert DEFAULT_MAX_NODES == 400_000  # the paper's GPU-memory filter


def test_selection_outcome_and_history_types():
    from repro.models import NeuroSelect
    from repro.selection import NeuroSelectSolver, Trainer
    from tests.conftest import make_labeled
    from repro.cnf import random_ksat

    instances = [make_labeled(random_ksat(8, 20, seed=s), s % 2) for s in range(2)]
    trainer = Trainer(NeuroSelect(hidden_dim=8, seed=0), epochs=1)
    history = trainer.fit(instances)
    assert isinstance(history, TrainingHistory)
    outcome = NeuroSelectSolver(trainer.model).solve(
        instances[0].cnf, max_conflicts=100
    )
    assert isinstance(outcome, SelectionOutcome)


def test_bench_result_types():
    from repro.bench import (
        fig7_table3_end_to_end,
        scale_for_budget,
        suite_statistics,
        table2_classification,
    )
    from repro.bench.runner import InstanceRecord
    from repro.models import NeuroSelect
    from repro.selection import PolicyDataset
    from tests.conftest import make_labeled
    from repro.cnf import random_ksat

    stats = suite_statistics(
        [InstanceRecord("a", "", "default", Status.SATISFIABLE, 10, 1, 0.0)],
        scale_for_budget(100),
        "x",
    )
    assert isinstance(stats, SuiteStatistics)

    dataset = PolicyDataset(
        train=[make_labeled(random_ksat(8, 20, seed=0), 0)],
        test=[make_labeled(random_ksat(8, 20, seed=1), 1)],
    )
    model = NeuroSelect(hidden_dim=8, seed=0)
    t2 = table2_classification(dataset, models={"m": model}, epochs=1)
    assert isinstance(t2, Table2Result)
    e2e = fig7_table3_end_to_end(dataset.test, model, max_propagations=5_000)
    assert isinstance(e2e, EndToEndResult)


def test_year_statistics_type():
    from repro.selection import PolicyDataset, dataset_statistics
    from tests.conftest import make_labeled

    ds = PolicyDataset(train=[make_labeled(CNF([[1, 2]]), 0, year=2016)])
    rows = dataset_statistics(ds)
    assert isinstance(rows[0], YearStatistics)


def test_readouts_registry_and_message_pass():
    import numpy as np

    assert set(READOUTS) == {"mean", "max", "mean_max"}
    layer = DirectedMessagePass(dim=4, rng=np.random.default_rng(0))
    assert layer.num_parameters() > 0
