"""Regression corpus: crafted DIMACS corner cases swept through the stack.

Every file in ``tests/data`` is parsed, solved under both deletion
policies (cross-checked against the brute-force oracle), preprocessed,
and — when UNSAT — certified via DRAT.  New corner cases go in as new
files; the sweep picks them up automatically.
"""

from pathlib import Path

import pytest

from repro.cnf import parse_dimacs_file, to_dimacs, parse_dimacs
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.simplify import solve_with_preprocessing
from repro.solver import ProofLog, Solver, Status, brute_force_status, check_drat

DATA_DIR = Path(__file__).parent / "data"
CORPUS = sorted(DATA_DIR.glob("*.cnf"))

EXPECTED = {
    "trivial_sat.cnf": Status.SATISFIABLE,
    "trivial_unsat.cnf": Status.UNSATISFIABLE,
    "empty_formula.cnf": Status.SATISFIABLE,
    "all_tautologies.cnf": Status.SATISFIABLE,
    "duplicate_clauses.cnf": Status.UNSATISFIABLE,
    "multiline_clause.cnf": Status.SATISFIABLE,
    "header_overstates_vars.cnf": Status.SATISFIABLE,
    "big_clause.cnf": Status.SATISFIABLE,
    "percent_terminated.cnf": Status.SATISFIABLE,
    "binary_chain.cnf": Status.SATISFIABLE,
}


def test_corpus_is_covered():
    """Every corpus file has an expectation and vice versa."""
    assert {p.name for p in CORPUS} == set(EXPECTED)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_expected_status_matches_oracle(path):
    cnf = parse_dimacs_file(path)
    assert brute_force_status(cnf) is EXPECTED[path.name]


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
@pytest.mark.parametrize("policy", [DefaultPolicy, FrequencyPolicy])
def test_solver_on_corpus(path, policy):
    cnf = parse_dimacs_file(path)
    result = Solver(cnf, policy=policy()).solve()
    assert result.status is EXPECTED[path.name]
    if result.is_sat:
        assert cnf.check_model(result.model)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_preprocessing_on_corpus(path):
    cnf = parse_dimacs_file(path)
    result = solve_with_preprocessing(cnf)
    assert result.status is EXPECTED[path.name]
    if result.is_sat:
        assert cnf.check_model(result.model)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_unsat_corpus_certified(path):
    if EXPECTED[path.name] is not Status.UNSATISFIABLE:
        pytest.skip("only UNSAT instances carry proofs")
    cnf = parse_dimacs_file(path)
    proof = ProofLog()
    result = Solver(cnf, proof=proof).solve()
    assert result.is_unsat
    assert check_drat(cnf, proof.text())


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_round_trip_stability(path):
    """parse -> serialize -> parse keeps clauses (sans tautology policy)."""
    cnf = parse_dimacs_file(path)
    reparsed = parse_dimacs(to_dimacs(cnf))
    assert [c.literals for c in reparsed.clauses] == [
        c.literals for c in cnf.clauses
    ]
    assert reparsed.num_vars == cnf.num_vars


def test_binary_chain_propagates_without_decisions():
    cnf = parse_dimacs_file(DATA_DIR / "binary_chain.cnf")
    result = Solver(cnf).solve()
    assert result.stats.decisions == 0
    assert result.stats.propagations >= 7
    assert all(result.model[v] for v in range(1, 9))


def test_big_clause_forces_last_literal():
    cnf = parse_dimacs_file(DATA_DIR / "big_clause.cnf")
    result = Solver(cnf).solve()
    assert result.model[12] is True
    assert all(result.model[v] is False for v in range(1, 12))
