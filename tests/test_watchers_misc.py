"""Additional unit tests: watch lists, statistics edge cases, calibration scale."""

import pytest

from repro.bench.calibration import EffortScale, PAPER_TIMEOUT_SECONDS
from repro.solver.clause_db import SolverClause
from repro.solver.statistics import SolverStatistics
from repro.solver.watchers import WatchLists


class TestWatchLists:
    def test_attach_requires_two_literals(self):
        watches = WatchLists(3)
        with pytest.raises(AssertionError):
            watches.attach(SolverClause([2]))

    def test_attach_registers_both_watches(self):
        watches = WatchLists(3)
        clause = SolverClause([2, 4, 6])
        watches.attach(clause)
        assert clause in watches.watchers_of(2)
        assert clause in watches.watchers_of(4)
        assert clause not in watches.watchers_of(6)
        assert watches.total_watches() == 2

    def test_detach_garbage_sweeps_everywhere(self):
        watches = WatchLists(3)
        keep = SolverClause([2, 4])
        drop = SolverClause([2, 6])
        watches.attach(keep)
        watches.attach(drop)
        drop.garbage = True
        watches.detach_garbage()
        assert keep in watches.watchers_of(2)
        assert drop not in watches.watchers_of(2)
        assert watches.total_watches() == 2

    def test_manual_watch(self):
        watches = WatchLists(2)
        clause = SolverClause([2, 4])
        watches.watch(4, clause)
        assert watches.watchers_of(4) == [clause]


class TestStatisticsEdges:
    def test_mean_glue_zero_when_no_learning(self):
        stats = SolverStatistics()
        assert stats.mean_glue() == 0.0
        assert stats.mean_learned_size() == 0.0

    def test_means(self):
        stats = SolverStatistics(
            learned_clauses=4, glue_sum=12, learned_literals=20
        )
        assert stats.mean_glue() == 3.0
        assert stats.mean_learned_size() == 5.0

    def test_reset_clears_all_counters(self):
        stats = SolverStatistics(decisions=5, propagations=9, glue_sum=3)
        stats.reset()
        assert all(v == 0 for v in vars(stats).values())


class TestEffortScaleEdges:
    def test_paper_timeout_constant(self):
        assert PAPER_TIMEOUT_SECONDS == 5000.0

    def test_custom_timeout(self):
        scale = EffortScale(propagations_at_timeout=100, timeout_seconds=10.0)
        assert scale.to_seconds(50) == pytest.approx(5.0)
        assert scale.to_seconds(1000) == 10.0
        assert scale.propagations_per_second == pytest.approx(10.0)
