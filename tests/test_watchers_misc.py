"""Additional unit tests: watch lists, statistics edge cases, calibration scale."""

import pytest

from repro.bench.calibration import EffortScale, PAPER_TIMEOUT_SECONDS
from repro.solver.clause_db import SolverClause
from repro.solver.statistics import SolverStatistics
from repro.solver.watchers import WatchLists


class TestWatchLists:
    def test_attach_requires_two_literals(self):
        watches = WatchLists(3)
        with pytest.raises(AssertionError):
            watches.attach(SolverClause([2]))

    def test_attach_registers_both_watches(self):
        watches = WatchLists(3)
        clause = SolverClause([2, 4, 6])
        watches.attach(clause)
        assert clause in watches.watchers_of(2)
        assert clause in watches.watchers_of(4)
        assert clause not in watches.watchers_of(6)
        assert watches.total_watches() == 2

    def test_detach_garbage_sweeps_everywhere(self):
        watches = WatchLists(3)
        keep = SolverClause([2, 4])
        drop = SolverClause([2, 6])
        watches.attach(keep)
        watches.attach(drop)
        drop.garbage = True
        watches.detach_garbage()
        assert keep in watches.watchers_of(2)
        assert drop not in watches.watchers_of(2)
        assert watches.total_watches() == 2

    def test_manual_watch(self):
        watches = WatchLists(2)
        clause = SolverClause([2, 4])
        watches.watch(4, clause)
        assert watches.watchers_of(4) == [clause]

    def test_binary_clauses_use_binary_table(self):
        watches = WatchLists(3)
        binary = SolverClause([2, 4])
        long = SolverClause([2, 4, 6])
        watches.attach(binary)
        watches.attach(long)
        assert any(rec[1] is binary for rec in watches.binary[2])
        assert any(rec[1] is binary for rec in watches.binary[4])
        assert all(rec[1] is not binary for rec in watches.watches[2])
        assert any(rec[1] is long for rec in watches.watches[2])
        assert watches.total_watches() == 4

    def test_garbage_never_survives_sweep(self):
        # Mixed population in both tables, several garbage clauses — the
        # single-pass sweep must leave no garbage record in either table,
        # at any literal index, while preserving every live record.
        watches = WatchLists(6)
        live = [
            SolverClause([2, 4]),
            SolverClause([3, 5]),
            SolverClause([2, 5, 7]),
            SolverClause([4, 6, 8, 10]),
        ]
        dead = [
            SolverClause([2, 6]),
            SolverClause([4, 5]),
            SolverClause([2, 4, 9]),
            SolverClause([3, 7, 11]),
        ]
        for clause in live + dead:
            watches.attach(clause)
        for clause in dead:
            clause.garbage = True
        watches.detach_garbage()
        for table in (watches.binary, watches.watches):
            for records in table:
                for record in records:
                    assert not record[1].garbage
        for clause in live:
            first, second = clause.lits[0], clause.lits[1]
            assert clause in watches.watchers_of(first)
            assert clause in watches.watchers_of(second)
        assert watches.total_watches() == 2 * len(live)

    def test_sweep_of_fully_garbage_lists_empties_them(self):
        watches = WatchLists(4)
        clauses = [SolverClause([2, 4]), SolverClause([2, 4, 6])]
        for clause in clauses:
            watches.attach(clause)
            clause.garbage = True
        watches.detach_garbage()
        assert watches.total_watches() == 0
        assert watches.watchers_of(2) == []


class TestStatisticsEdges:
    def test_mean_glue_zero_when_no_learning(self):
        stats = SolverStatistics()
        assert stats.mean_glue() == 0.0
        assert stats.mean_learned_size() == 0.0

    def test_means(self):
        stats = SolverStatistics(
            learned_clauses=4, glue_sum=12, learned_literals=20
        )
        assert stats.mean_glue() == 3.0
        assert stats.mean_learned_size() == 5.0

    def test_reset_clears_all_counters(self):
        stats = SolverStatistics(decisions=5, propagations=9, glue_sum=3)
        stats.reset()
        assert all(v == 0 for v in vars(stats).values())


class TestEffortScaleEdges:
    def test_paper_timeout_constant(self):
        assert PAPER_TIMEOUT_SECONDS == 5000.0

    def test_custom_timeout(self):
        scale = EffortScale(propagations_at_timeout=100, timeout_seconds=10.0)
        assert scale.to_seconds(50) == pytest.approx(5.0)
        assert scale.to_seconds(1000) == 10.0
        assert scale.propagations_per_second == pytest.approx(10.0)
