"""Unit tests for DIMACS parsing and serialization."""

import pytest

from repro.cnf import CNF, parse_dimacs, parse_dimacs_file, to_dimacs, write_dimacs_file
from repro.cnf.dimacs import DimacsError


class TestParse:
    def test_basic_document(self):
        cnf = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert cnf.num_vars == 3
        assert cnf.num_clauses == 2
        assert cnf.clauses[0].literals == (1, -2)

    def test_comments_collected(self):
        cnf = parse_dimacs("c hello\nc world\np cnf 1 1\n1 0\n")
        assert cnf.comments == ["hello", "world"]

    def test_clause_spanning_lines(self):
        cnf = parse_dimacs("p cnf 4 1\n1 2\n3 4 0\n")
        assert cnf.clauses[0].literals == (1, 2, 3, 4)

    def test_multiple_clauses_one_line(self):
        cnf = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert cnf.num_clauses == 2

    def test_missing_header_lenient(self):
        cnf = parse_dimacs("1 2 0\n")
        assert cnf.num_vars == 2

    def test_missing_header_strict_raises(self):
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n", strict=True)

    def test_clause_count_mismatch_strict(self):
        with pytest.raises(DimacsError, match="declares"):
            parse_dimacs("p cnf 2 5\n1 0\n", strict=True)

    def test_unterminated_clause_lenient_keeps_it(self):
        cnf = parse_dimacs("p cnf 2 1\n1 2\n")
        assert cnf.num_clauses == 1

    def test_unterminated_clause_strict_raises(self):
        with pytest.raises(DimacsError, match="terminated"):
            parse_dimacs("p cnf 2 1\n1 2\n", strict=True)

    def test_duplicate_header_raises(self):
        with pytest.raises(DimacsError, match="duplicate"):
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")

    def test_malformed_header_raises(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p dnf 1 1\n1 0\n")
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf one 1\n1 0\n")

    def test_bad_token_raises(self):
        with pytest.raises(DimacsError, match="bad token"):
            parse_dimacs("p cnf 1 1\n1 x 0\n")

    def test_percent_terminator_stops_parsing(self):
        cnf = parse_dimacs("p cnf 1 1\n1 0\n%\n0\n")
        assert cnf.num_clauses == 1

    def test_header_var_count_respected_when_larger(self):
        cnf = parse_dimacs("p cnf 9 1\n1 0\n")
        assert cnf.num_vars == 9


class TestRoundTrip:
    def test_serialize_and_reparse(self):
        original = CNF([[1, -2], [3]], comments=["generated"])
        text = to_dimacs(original)
        assert text.startswith("c generated\np cnf 3 2\n")
        parsed = parse_dimacs(text)
        assert [c.literals for c in parsed.clauses] == [(1, -2), (3,)]
        assert parsed.num_vars == 3

    def test_comments_optional(self):
        cnf = CNF([[1]], comments=["secret"])
        assert "secret" not in to_dimacs(cnf, include_comments=False)

    def test_file_round_trip(self, tmp_path):
        cnf = CNF([[1, 2], [-1, -2]])
        path = tmp_path / "f.cnf"
        write_dimacs_file(cnf, path)
        loaded = parse_dimacs_file(path, strict=True)
        assert [c.literals for c in loaded.clauses] == [(1, 2), (-1, -2)]
