"""Tests for the observability layer (repro.obs).

Covers the metrics registry, the buffered JSONL trace sink and its
torn-final-line-tolerant reader, the observer façade, run manifests,
the trace report, the instrumented solver/trainer paths, the CLI
``--trace`` flags, and the disabled-path overhead guard.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.cnf.generators import random_ksat
from repro.obs import (
    BATCH_BUCKETS,
    EVENT_TYPES,
    NULL_OBSERVER,
    Histogram,
    MetricsRegistry,
    Observer,
    RunManifest,
    TraceSink,
    collect_manifest,
    new_run_id,
    read_trace,
    render_prometheus,
    render_report,
    start_run,
    summarize_traces,
    validate_event,
    validate_traces,
)
from repro.solver import Solver, Status


# ---------------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("runner.done").inc()
        registry.counter("runner.done").inc(3)
        registry.gauge("depth").set(7.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["runner.done"] == 4
        assert snapshot["gauges"]["depth"] == 7.5

    def test_histogram_buckets_and_summary(self):
        h = Histogram("t", bounds=[1, 10, 100])
        for value in (0.5, 1, 5, 50, 500):
            h.observe(value)
        # counts[i] holds observations <= bounds[i]; last slot overflows.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 500
        assert h.mean() == pytest.approx(556.5 / 5)

    def test_histogram_quantile_is_bucket_resolution(self):
        h = Histogram("t", bounds=[1, 10, 100])
        for value in (0.2, 0.4, 5, 5, 5, 5, 5, 5, 5, 250):
            h.observe(value)
        assert h.quantile(0.5) == 10  # the bucket bound, not the raw value
        assert h.quantile(1.0) == 250  # overflow reports the recorded max
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=[])
        with pytest.raises(ValueError):
            Histogram("t", bounds=[1, 1, 2])
        with pytest.raises(ValueError):
            Histogram("t", bounds=[2, 1])

    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        first = registry.histogram("h", bounds=[1, 2])
        # Later callers inherit the original bucket layout.
        assert registry.histogram("h", bounds=[5, 6]) is first
        assert first.bounds == (1.0, 2.0)

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x").inc(100)
        registry.gauge("g").set(1.0)
        registry.histogram("h", BATCH_BUCKETS).observe(3)
        assert registry.snapshot() == {}
        # Null instruments are shared singletons.
        assert registry.counter("a") is registry.counter("b")


# ---------------------------------------------------------------------------
# trace sink + reader


class TestTraceSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path) as sink:
            sink.emit("run-start", {"command": "test"})
            sink.emit("restart", {"conflicts": 10})
            sink.emit("run-end", {})
        events, errors = read_trace(path)
        assert errors == []
        assert [e["event"] for e in events] == ["run-start", "restart", "run-end"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["run_id"] == sink.run_id for e in events)
        # Monotonic timestamps relative to run start.
        assert events[0]["ts"] <= events[1]["ts"] <= events[2]["ts"]

    def test_buffering_defers_writes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TraceSink(path, buffer_lines=64)
        sink.emit("restart", {})
        assert not path.exists() or path.read_text() == ""
        sink.flush()
        assert len(path.read_text().splitlines()) == 1
        sink.close()

    def test_buffer_flushes_at_capacity(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TraceSink(path, buffer_lines=4)
        for _ in range(4):
            sink.emit("restart", {})
        assert len(path.read_text().splitlines()) == 4
        sink.close()

    def test_emit_after_close_is_dropped(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl")
        sink.emit("restart", {})
        sink.close()
        sink.emit("restart", {})
        sink.close()  # idempotent
        events, _ = read_trace(sink.path)
        assert len(events) == 1

    def test_exotic_values_serialize_via_str(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl")
        sink.emit("solve-end", {"status": Status.SATISFIABLE})
        sink.close()
        events, errors = read_trace(sink.path)
        assert errors == []
        assert "SATISFIABLE" in str(events[0]["status"])

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path) as sink:
            sink.emit("run-start", {})
            sink.emit("restart", {})
        with path.open("a") as handle:
            handle.write('{"event": "run-end", "ts": 0.5, "ru')  # killed writer
        events, errors = read_trace(path)
        assert errors == []
        assert len(events) == 2

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('not json\n{"event":"restart","ts":0.1,"run_id":"r-0","seq":0}\n')
        events, errors = read_trace(path)
        assert len(events) == 1
        assert errors and "line 1" in errors[0]
        with pytest.raises(ValueError):
            read_trace(path, strict=True)

    def test_new_run_id_shape(self):
        run_id = new_run_id()
        assert run_id.startswith("r-") and len(run_id) == 14
        assert run_id != new_run_id()


class TestValidateEvent:
    def test_valid(self):
        assert validate_event(
            {"event": "restart", "ts": 0.1, "run_id": "r-0", "seq": 3}
        ) is None

    @pytest.mark.parametrize("record,fragment", [
        ([1, 2], "not a JSON object"),
        ({"ts": 0.1, "run_id": "r", "seq": 0}, "missing required field"),
        ({"event": "restart", "ts": "x", "run_id": "r", "seq": 0}, "wrong type"),
        ({"event": "restart", "ts": 0.1, "run_id": "r", "seq": True}, "wrong type"),
        ({"event": "nope", "ts": 0.1, "run_id": "r", "seq": 0}, "unknown event"),
        ({"event": "restart", "ts": -1, "run_id": "r", "seq": 0}, "negative timestamp"),
        ({"event": "restart", "ts": 0.1, "run_id": "r", "seq": -2}, "negative sequence"),
    ])
    def test_invalid(self, record, fragment):
        assert fragment in validate_event(record)

    def test_every_declared_event_type_validates(self):
        for event in EVENT_TYPES:
            record = {"event": event, "ts": 0.0, "run_id": "r-0", "seq": 0}
            assert validate_event(record) is None


# ---------------------------------------------------------------------------
# observer


class TestObserver:
    def test_null_observer_is_fully_inert(self, tmp_path):
        assert not NULL_OBSERVER.enabled
        assert not NULL_OBSERVER.tracing
        NULL_OBSERVER.event("restart", conflicts=1)
        with NULL_OBSERVER.span("anything"):
            pass
        NULL_OBSERVER.counter("x").inc()
        NULL_OBSERVER.finish(exit_code=0)
        assert NULL_OBSERVER.span_summary() == {}
        assert list(tmp_path.iterdir()) == []

    def test_span_aggregation_and_histogram(self, tmp_path):
        observer = Observer(
            sink=TraceSink(tmp_path / "t.jsonl"), registry=MetricsRegistry()
        )
        for _ in range(3):
            with observer.span("reduce"):
                pass
        summary = observer.span_summary()
        assert summary["reduce"]["count"] == 3
        assert summary["reduce"]["seconds"] >= 0.0
        assert observer.registry.histogram("span.reduce.seconds").count == 3
        observer.close()

    def test_span_emit_writes_span_event(self, tmp_path):
        observer = Observer(sink=TraceSink(tmp_path / "t.jsonl"))
        with observer.span("suite", emit=True, policy="default"):
            pass
        with observer.span("inner"):  # aggregate-only
            pass
        observer.close()
        events, _ = read_trace(observer.sink.path)
        spans = [e for e in events if e["event"] == "span"]
        assert len(spans) == 1
        assert spans[0]["name"] == "suite" and spans[0]["policy"] == "default"

    def test_finish_embeds_phases_and_metrics(self, tmp_path):
        observer = Observer(
            sink=TraceSink(tmp_path / "t.jsonl"), registry=MetricsRegistry()
        )
        observer.counter("runner.done").inc(2)
        with observer.span("solve"):
            pass
        observer.finish(exit_code=10)
        events, errors = read_trace(observer.sink.path)
        assert errors == []
        end = events[-1]
        assert end["event"] == "run-end"
        assert end["exit_code"] == 10
        assert end["phases"]["solve"]["count"] == 1
        assert end["metrics"]["counters"]["runner.done"] == 2

    def test_metrics_only_observer_times_spans_without_sink(self):
        observer = Observer(registry=MetricsRegistry())
        assert observer.enabled and not observer.tracing
        with observer.span("solve"):
            pass
        assert observer.registry.histogram("span.solve.seconds").count == 1


# ---------------------------------------------------------------------------
# manifest + start_run


class TestManifest:
    def test_collect_and_write(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        manifest = collect_manifest(
            "r-abc", "solve", argv=["solve", "x.cnf"],
            config={"policy": "default"}, seeds={"instance": 3},
            policy="default",
        )
        assert manifest.python and manifest.platform and manifest.cpu_count > 0
        assert manifest.env["REPRO_TRACE_DIR"] == str(tmp_path)
        path = tmp_path / "m.json"
        manifest.write(path)
        loaded = json.loads(path.read_text())
        assert loaded["run_id"] == "r-abc"
        assert loaded["seeds"] == {"instance": 3}
        assert loaded == RunManifest(**loaded).to_dict()

    def test_start_run_without_dir_returns_null(self):
        assert start_run(None, "solve") is NULL_OBSERVER

    def test_start_run_creates_trace_and_manifest(self, tmp_path):
        observer = start_run(
            tmp_path, "solve", argv=["solve"], policy="frequency"
        )
        observer.finish(exit_code=0)
        traces = list(tmp_path.glob("solve-*.jsonl"))
        manifests = list(tmp_path.glob("solve-*.manifest.json"))
        assert len(traces) == 1 and len(manifests) == 1
        events, errors = read_trace(traces[0])
        assert errors == []
        assert events[0]["event"] == "run-start"
        assert events[0]["manifest"]["policy"] == "frequency"
        assert events[0]["manifest"]["run_id"] == observer.run_id

    def test_start_run_metrics_flag(self, tmp_path):
        observer = start_run(tmp_path, "solve", metrics=False)
        assert observer.tracing and not observer.registry.enabled
        observer.finish(exit_code=0)


# ---------------------------------------------------------------------------
# instrumented components


def _traced_solve(tmp_path, cnf, **solve_kwargs):
    observer = start_run(tmp_path, "solve", policy="default")
    result = Solver(cnf, observer=observer).solve(**solve_kwargs)
    observer.finish(exit_code=0)
    events, errors = read_trace(observer.sink.path)
    assert errors == []
    return result, events


class TestInstrumentedSolve:
    def test_traced_solve_event_stream(self, tmp_path):
        cnf = random_ksat(60, 250, seed=3)
        result, events = _traced_solve(tmp_path, cnf)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-end"
        assert "solve-start" in kinds and "solve-end" in kinds
        end = next(e for e in events if e["event"] == "solve-end")
        assert end["status"] == result.status.name
        assert end["stats"]["conflicts"] == result.stats.conflicts
        if result.stats.restarts:
            assert kinds.count("restart") == result.stats.restarts

    def test_traced_solve_matches_untraced_stats(self, tmp_path):
        cnf = random_ksat(50, 205, seed=11)
        plain = Solver(cnf).solve()
        traced, _ = _traced_solve(tmp_path, cnf)
        assert traced.status is plain.status
        assert traced.stats.conflicts == plain.stats.conflicts
        assert traced.stats.propagations == plain.stats.propagations
        assert traced.stats.bcp_rounds == plain.stats.bcp_rounds

    def test_glue_and_batch_histograms_populated(self, tmp_path):
        observer = start_run(tmp_path, "solve")
        result = Solver(random_ksat(60, 250, seed=3), observer=observer).solve()
        registry = observer.registry
        assert registry.histogram("bcp.batch_size").count == result.stats.bcp_rounds
        assert registry.histogram("solver.learned_glue").count > 0
        observer.finish(exit_code=0)

    def test_reduce_event_on_long_run(self, tmp_path):
        cnf = random_ksat(120, 504, seed=9)
        result, events = _traced_solve(tmp_path, cnf, max_conflicts=5000)
        if result.stats.reductions:
            reduces = [e for e in events if e["event"] == "reduce"]
            assert len(reduces) == result.stats.reductions
            assert all("deleted" in e and "candidates" in e for e in reduces)


class TestInstrumentedTrainer:
    def test_epoch_events(self, tmp_path, simple_sat_cnf, simple_unsat_cnf):
        from repro.models.baselines import FeatureLogisticRegression
        from repro.selection.trainer import Trainer
        from tests.conftest import make_labeled

        observer = start_run(tmp_path, "train")
        instances = [
            make_labeled(simple_sat_cnf, 1),
            make_labeled(simple_unsat_cnf, 0),
        ]
        trainer = Trainer(
            FeatureLogisticRegression(seed=0), epochs=3, observer=observer
        )
        trainer.fit(instances)
        observer.finish(exit_code=0)
        events, errors = read_trace(observer.sink.path)
        assert errors == []
        epochs = [e for e in events if e["event"] == "epoch-end"]
        assert len(epochs) == 3
        assert all(
            "loss" in e and "accuracy" in e and "grad_norm" in e for e in epochs
        )
        assert any(e["event"] == "train-start" for e in events)
        assert any(e["event"] == "train-end" for e in events)


# ---------------------------------------------------------------------------
# report


class TestReport:
    def _make_traces(self, tmp_path):
        cnf = random_ksat(60, 250, seed=3)
        observer = start_run(tmp_path, "solve", policy="default")
        Solver(cnf, observer=observer).solve()
        observer.finish(exit_code=10)
        return sorted(tmp_path.glob("*.jsonl"))

    def test_summarize_and_render(self, tmp_path):
        paths = self._make_traces(tmp_path)
        summary = summarize_traces(paths)
        assert len(summary["files"]) == 1
        assert summary["errors"] == []
        assert summary["event_counts"]["solve-start"] == 1
        assert "solve" in summary["phases"]
        text = render_report(summary)
        assert "trace report" in text
        assert "per-phase time breakdown" in text
        assert "solve" in text

    def test_validate_traces_flags_bad_lines(self, tmp_path):
        paths = self._make_traces(tmp_path)
        assert validate_traces(paths) == []
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"event":"bogus","ts":0.1,"run_id":"r-0","seq":0}\n'
            '{"event":"restart","ts":0.2,"run_id":"r-0","seq":1}\n'
        )
        errors = validate_traces(paths + [bad])
        assert len(errors) == 1 and "bogus" in errors[0]

    def test_summary_is_json_serializable(self, tmp_path):
        summary = summarize_traces(self._make_traces(tmp_path))
        json.dumps(summary, default=str)


# ---------------------------------------------------------------------------
# CLI


class TestCliTracing:
    def _write_cnf(self, tmp_path):
        from repro.cnf import write_dimacs_file

        path = tmp_path / "f.cnf"
        write_dimacs_file(random_ksat(40, 165, seed=7), path)
        return path

    def test_solve_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        cnf = self._write_cnf(tmp_path)
        trace_dir = tmp_path / "traces"
        code = main(["solve", "--trace", str(trace_dir), str(cnf)])
        assert code in (10, 20)
        out = capsys.readouterr().out
        assert "c trace " in out
        traces = list(trace_dir.glob("solve-*.jsonl"))
        assert len(traces) == 1
        events, errors = read_trace(traces[0])
        assert errors == []
        assert events[-1]["event"] == "run-end"
        assert events[-1]["exit_code"] == code

    def test_trace_dir_env_fallback(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        cnf = self._write_cnf(tmp_path)
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "env-traces"))
        main(["solve", str(cnf)])
        assert list((tmp_path / "env-traces").glob("solve-*.jsonl"))

    def test_no_metrics_flag(self, tmp_path, capsys):
        from repro.cli import main

        cnf = self._write_cnf(tmp_path)
        main(["solve", "--trace", str(tmp_path / "t"), "--no-metrics", str(cnf)])
        trace = next((tmp_path / "t").glob("solve-*.jsonl"))
        events, _ = read_trace(trace)
        assert next(e for e in events if e["event"] == "run-end")["metrics"] == {}

    def test_untraced_solve_writes_nothing(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        cnf = self._write_cnf(tmp_path)
        before = set(tmp_path.iterdir())
        main(["solve", str(cnf)])
        assert "c trace" not in capsys.readouterr().out
        assert set(tmp_path.iterdir()) == before

    def test_report_renders_traces(self, tmp_path, capsys):
        from repro.cli import main

        cnf = self._write_cnf(tmp_path)
        trace_dir = tmp_path / "traces"
        main(["solve", "--trace", str(trace_dir), str(cnf)])
        capsys.readouterr()
        trace = str(next(trace_dir.glob("*.jsonl")))
        assert main(["report", "--validate", trace]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out and "solve" in out

    def test_report_json_mode(self, tmp_path, capsys):
        from repro.cli import main

        cnf = self._write_cnf(tmp_path)
        trace_dir = tmp_path / "traces"
        main(["solve", "--trace", str(trace_dir), str(cnf)])
        capsys.readouterr()
        main(["report", "--json", str(next(trace_dir.glob("*.jsonl")))])
        summary = json.loads(capsys.readouterr().out)
        assert len(summary["files"]) == 1

    def test_report_validate_fails_on_bad_trace(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event":"bogus","ts":0.1,"run_id":"r-0","seq":0}\n')
        assert main(["report", "--validate", str(bad)]) == 1

    def test_bench_subcommand_traced(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = tmp_path / "traces"
        code = main([
            "bench", "--instances", "2", "--max-propagations", "20000",
            "--trace", str(trace_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "solved" in out and "sweep:" in out
        trace = next(trace_dir.glob("bench-*.jsonl"))
        events, errors = read_trace(trace)
        assert errors == []
        kinds = [e["event"] for e in events]
        assert "suite-start" in kinds and "suite-end" in kinds
        assert kinds.count("task-finish") == 2


# ---------------------------------------------------------------------------
# overhead guard


#: Instrument mutators that must never run on a disabled hot path.  The
#: null observer's coarse no-op guards (``event`` with no sink, ``span``
#: returning the shared null span) are allowed — they fire per restart /
#: reduction, not per propagation — but any of these names firing means
#: real instrumentation leaked into the disabled path.
FORBIDDEN_OBS_CALLS = frozenset(
    {"observe", "inc", "set", "emit", "flush", "_record_span"}
)


def _profile_obs_calls(action):
    """Run ``action`` under a profiler; return obs-module frame names."""
    names = []

    def profiler(frame, event, arg):
        if event == "call" and "/obs/" in frame.f_code.co_filename:
            names.append(frame.f_code.co_name)

    sys.setprofile(profiler)
    try:
        action()
    finally:
        sys.setprofile(None)
    return names


class TestDisabledOverhead:
    def test_disabled_solve_skips_all_instruments(self):
        """No metric/trace mutator may execute during an unobserved solve.

        The disabled path may make a handful of coarse no-op calls
        (one per restart/reduction), but the per-propagation and
        per-conflict instruments must be skipped entirely — that is
        what keeps disabled tracing at baseline cost.
        """
        cnf = random_ksat(60, 250, seed=2)
        solver = Solver(cnf)
        calls = _profile_obs_calls(solver.solve)
        assert not FORBIDDEN_OBS_CALLS.intersection(calls)
        # Coarse no-op guards scale with restarts/reductions/rephases,
        # never with propagations.
        stats = solver.stats
        ceiling = 8 + stats.restarts + stats.rephases + 4 * stats.reductions
        assert len(calls) <= ceiling, calls

    def test_disabled_simplify_skips_all_instruments(self, simple_sat_cnf):
        from repro.simplify import Preprocessor

        preprocessor = Preprocessor()
        calls = _profile_obs_calls(
            lambda: preprocessor.preprocess(simple_sat_cnf)
        )
        assert not FORBIDDEN_OBS_CALLS.intersection(calls)


# ---------------------------------------------------------------------------
# Prometheus text exposition


class TestRenderPrometheus:
    def test_counters_gauges_and_cumulative_histogram(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("serve.requests").inc(5)
        registry.gauge("queue.depth").set(2.0)
        histogram = registry.histogram("serve.batch_size", (1.0, 4.0, 8.0))
        for value in (1, 3, 5, 100):
            histogram.observe(value)
        text = render_prometheus(registry.snapshot())

        assert "# TYPE serve_requests counter\nserve_requests 5" in text
        assert "# TYPE queue_depth gauge\nqueue_depth 2" in text
        # Snapshot counts are per-bucket; the exposition must be
        # cumulative and close with the +Inf bucket holding everything.
        assert 'serve_batch_size_bucket{le="1"} 1' in text
        assert 'serve_batch_size_bucket{le="4"} 2' in text
        assert 'serve_batch_size_bucket{le="8"} 3' in text
        assert 'serve_batch_size_bucket{le="+Inf"} 4' in text
        assert "serve_batch_size_count 4" in text
        assert "serve_batch_size_sum 109" in text
        assert text.endswith("\n")

    def test_extra_gauges_and_name_sanitization(self):
        text = render_prometheus(
            {},
            extra_gauges={
                "serve.breaker.state": "closed",  # non-numeric: skipped
                "serve.accepting": True,
                "1weird-name": 7,
            },
        )
        assert "# TYPE serve_accepting gauge\nserve_accepting 1" in text
        assert "_1weird_name 7" in text
        assert "closed" not in text

    def test_empty_snapshot_renders_empty_document(self):
        assert render_prometheus({}) == "\n"
