"""Tests for the differential fuzzing subsystem (repro.fuzz).

Covers the oracle bank, campaign determinism, the runner fan-out path,
the ddmin shrinker (including against an injected solver bug, per the
issue's acceptance criterion: a replayable repro of <= 12 clauses), the
failure corpus round trip, and the ``repro fuzz`` CLI.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main as cli_main
from repro.cnf import CNF, parse_dimacs_file, pigeonhole, random_ksat
from repro.fuzz import (
    BruteForceOracle,
    CampaignConfig,
    Discrepancy,
    FailureCorpus,
    MetamorphicOracle,
    OracleBank,
    OracleContext,
    PolicyAgreementOracle,
    build_cases,
    default_oracles,
    default_solve_fn,
    derive_mutants,
    discrepancy_predicate,
    formula_key,
    replay_entry,
    run_campaign,
    shrink,
)
from repro.fuzz.campaign import draw_spec
from repro.obs import Observer, TraceSink, read_trace
from repro.solver.reference import brute_force_status
from repro.solver.types import Status

# ---------------------------------------------------------------------------
# Injected solver faults (the test-only hooks the issue asks for)
# ---------------------------------------------------------------------------


def lying_unsat_solver(cnf, policy, budget, proof=None):
    """Soundness fault: mislabels every UNSAT formula as SAT."""
    status, model = default_solve_fn(cnf, policy, budget, proof)
    if status is Status.UNSATISFIABLE:
        return Status.SATISFIABLE, [None] + [True] * cnf.num_vars
    return status, model


def size_sensitive_solver(cnf, policy, budget, proof=None):
    """Metamorphic fault: UNSAT verdict flips unless exactly 4 clauses."""
    status, model = default_solve_fn(cnf, policy, budget, proof)
    if cnf.num_clauses != 4 and status is Status.UNSATISFIABLE:
        return Status.SATISFIABLE, [None] + [True] * cnf.num_vars
    return status, model


def frequency_lying_solver(cnf, policy, budget, proof=None):
    """Policy fault: only the frequency policy mislabels UNSAT."""
    status, model = default_solve_fn(cnf, policy, budget, proof)
    if policy == "frequency" and status is Status.UNSATISFIABLE:
        return Status.SATISFIABLE, [None] + [True] * cnf.num_vars
    return status, model


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_bank_clean_on_sat_and_unsat(self, simple_sat_cnf, simple_unsat_cnf):
        bank = OracleBank()
        for cnf in (simple_sat_cnf, simple_unsat_cnf):
            assert bank.check(cnf, OracleContext(case="t")) == []

    def test_bank_clean_on_php3(self, php3):
        assert OracleBank().check(php3, OracleContext(case="php3")) == []

    def test_brute_force_catches_lie(self, simple_unsat_cnf):
        ctx = OracleContext(case="lie", solve_fn=lying_unsat_solver)
        found = BruteForceOracle().check(simple_unsat_cnf, ctx)
        assert len(found) == 1
        assert found[0].kind == "status-mismatch"
        assert found[0].expected == "UNSATISFIABLE"

    def test_policy_agreement_catches_policy_fault(self, simple_unsat_cnf):
        ctx = OracleContext(case="pol", solve_fn=frequency_lying_solver)
        found = PolicyAgreementOracle().check(simple_unsat_cnf, ctx)
        assert len(found) == 1
        assert "frequency=SATISFIABLE" in found[0].observed

    def test_metamorphic_catches_size_sensitivity(self):
        # 4 clauses -> truthful UNSAT; the duplicate mutation grows the
        # clause count (seed 3: duplicate#3 has 6) and flips the lie.
        cnf = CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        oracle = MetamorphicOracle(mutants=8, seed=3)
        ctx = OracleContext(case="meta", solve_fn=size_sensitive_solver)
        found = oracle.check(cnf, ctx)
        assert found, "expected at least one metamorphic flip"
        assert all(f.kind == "metamorphic-flip" for f in found)

    def test_oracle_crash_becomes_discrepancy(self, simple_sat_cnf):
        class Exploding(BruteForceOracle):
            name = "exploding"

            def check(self, cnf, ctx):
                raise RuntimeError("boom")

        bank = OracleBank([Exploding()])
        found = bank.check(simple_sat_cnf, OracleContext(case="c"))
        assert len(found) == 1
        assert found[0].kind == "oracle-crash"
        assert "boom" in found[0].detail

    def test_context_memoizes_solves(self, simple_sat_cnf):
        ctx = OracleContext(case="memo")
        ctx.solve(simple_sat_cnf)
        ctx.solve(simple_sat_cnf)
        assert ctx.solves == 1

    def test_undecided_subject_skips_comparisons(self):
        cnf = random_ksat(40, 170, seed=1)
        ctx = OracleContext(case="tiny-budget", budget=1, dpll_max_vars=0)
        bank = OracleBank(default_oracles(mutants=0))
        # With a 1-conflict budget the verdict is UNKNOWN; no oracle may
        # turn "ran out of budget" into a discrepancy.
        assert bank.check(cnf, ctx) == []

    def test_derive_mutants_deterministic_and_distinct_kinds(self):
        cnf = random_ksat(10, 30, seed=2)
        a = derive_mutants(cnf, seed=5, count=4)
        b = derive_mutants(cnf, seed=5, count=4)
        assert [name for name, _ in a] == ["rename#0", "flip#1", "shuffle#2", "duplicate#3"]
        assert [formula_key(m) for _, m in a] == [formula_key(m) for _, m in b]

    def test_mutants_preserve_satisfiability(self):
        for seed in range(4):
            cnf = random_ksat(8, 30, seed=seed)
            truth = brute_force_status(cnf)
            for _, mutant in derive_mutants(cnf, seed=seed, count=4):
                assert brute_force_status(mutant) is truth


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_case_drawing_deterministic(self):
        config = CampaignConfig(seeds=10, base_seed=7)
        keys_a = [formula_key(c.cnf) for c in build_cases(config)]
        keys_b = [formula_key(c.cnf) for c in build_cases(config)]
        assert keys_a == keys_b

    def test_every_family_has_ranges(self):
        from repro.cnf import GENERATOR_FAMILIES

        rng = random.Random(0)
        for family in sorted(GENERATOR_FAMILIES):
            spec = draw_spec(rng, family, seed=3)
            cnf = spec.build()
            assert cnf.num_clauses > 0

    def test_campaign_clean_and_deterministic(self):
        config = CampaignConfig(seeds=8, base_seed=11, budget=1500)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.clean, [d.summary() for d in first.discrepancies]
        assert first.fingerprint() == second.fingerprint()
        assert first.cases == 8
        assert set(first.checks) == {o.name for o in default_oracles()}

    def test_different_seed_changes_fingerprint(self):
        a = run_campaign(CampaignConfig(seeds=4, base_seed=0, budget=800))
        b = run_campaign(CampaignConfig(seeds=4, base_seed=1, budget=800))
        assert a.fingerprint() != b.fingerprint()

    def test_workers_do_not_change_report(self):
        base = CampaignConfig(seeds=4, base_seed=5, budget=800)
        parallel = CampaignConfig(seeds=4, base_seed=5, budget=800, workers=2)
        assert run_campaign(base).fingerprint() == run_campaign(parallel).fingerprint()

    def test_campaign_finds_injected_fault(self):
        config = CampaignConfig(seeds=8, base_seed=3, budget=1500)
        report = run_campaign(config, solve_hook=lying_unsat_solver)
        assert not report.clean
        oracles_fired = {d.oracle for d in report.discrepancies}
        assert "brute-force" in oracles_fired
        assert "dpll" in oracles_fired

    def test_campaign_emits_schema_valid_trace(self, tmp_path):
        sink = TraceSink(tmp_path / "fuzz.jsonl")
        observer = Observer(sink=sink)
        run_campaign(CampaignConfig(seeds=3, base_seed=2, budget=500), observer=observer)
        sink.close()
        events, errors = read_trace(tmp_path / "fuzz.jsonl")
        assert errors == []
        kinds = {e["event"] for e in events}
        assert {"fuzz-start", "fuzz-case", "fuzz-end"} <= kinds

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(seeds=0)
        with pytest.raises(ValueError):
            CampaignConfig(families=["no-such-family"])


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


def _core_clauses():
    """The minimal UNSAT core used by the shrinker tests."""
    return [[1, 2], [1, -2], [-1, 2], [-1, -2]]


def _core_in_junk(junk_clauses: int = 50, seed: int = 0) -> CNF:
    """The 4-clause core buried in satisfiable junk over other variables."""
    rng = random.Random(seed)
    clauses = list(_core_clauses())
    for _ in range(junk_clauses):
        vars_ = rng.sample(range(3, 20), 3)
        # All-positive junk clauses: satisfiable by construction and
        # never part of a minimal unsatisfiable core.
        clauses.append(list(vars_))
    rng.shuffle(clauses)
    return CNF(clauses)


class TestShrink:
    def test_ddmin_reduces_to_known_core(self):
        cnf = _core_in_junk()
        core = {frozenset(c) for c in _core_clauses()}

        def predicate(candidate: CNF) -> bool:
            have = {frozenset(c.literals) for c in candidate.clauses}
            return core <= have

        result = shrink(cnf, predicate)
        assert result.clauses == 4
        assert result.original_clauses == 54

    def test_predicate_must_hold_on_input(self, simple_sat_cnf):
        with pytest.raises(ValueError):
            shrink(simple_sat_cnf, lambda cnf: False)

    def test_shrink_compacts_variables(self):
        cnf = _core_in_junk()
        core = {frozenset(c) for c in _core_clauses()}

        def predicate(candidate: CNF) -> bool:
            # Core membership up to the identity of variables 1 and 2 —
            # stays true through compaction (vars 1, 2 keep their names).
            have = {frozenset(c.literals) for c in candidate.clauses}
            return core <= have

        result = shrink(cnf, predicate)
        assert result.cnf.num_vars == 2

    def test_shrink_against_injected_bug_small_and_replayable(self, tmp_path):
        """The acceptance criterion: <= 12 clauses, manifest replays."""
        cnf = _core_in_junk(junk_clauses=40, seed=9)
        bank = OracleBank()
        ctx = OracleContext(case="inj", solve_fn=lying_unsat_solver)
        found = bank.check(cnf, ctx)
        assert found, "injected bug must be detected on the seed formula"
        # 18 variables: the brute-force oracle is gated off the seed
        # formula, so DPLL is the reference that caught the lie.
        target = next(d for d in found if d.oracle == "dpll")

        predicate = discrepancy_predicate(
            bank, target, budget=2000, solve_fn=lying_unsat_solver
        )
        result = shrink(cnf, predicate)
        assert result.clauses <= 12
        # The minimal core for "solver lies about UNSAT" is an
        # unsatisfiable sub-formula; ours is exactly the planted core.
        assert brute_force_status(result.cnf) is Status.UNSATISFIABLE

        corpus = FailureCorpus(tmp_path / "corpus")
        manifest_path = corpus.add(
            result.cnf, target, budget=2000,
            original_clauses=result.original_clauses,
        )
        # Replaying through the buggy solver reproduces the discrepancy;
        # replaying through the real solver certifies the fix.
        replayed = replay_entry(manifest_path, solve_fn=lying_unsat_solver)
        assert any(d.matches(target) for d in replayed)
        assert replay_entry(manifest_path) == []

    def test_campaign_shrinks_into_corpus(self, tmp_path):
        config = CampaignConfig(
            seeds=8, base_seed=3, budget=1500,
            shrink=True, corpus_dir=tmp_path / "corpus",
        )
        report = run_campaign(config, solve_hook=lying_unsat_solver)
        assert report.corpus_entries
        corpus = FailureCorpus(tmp_path / "corpus")
        for manifest_path in corpus.entries():
            manifest = json.loads(manifest_path.read_text())
            assert manifest["schema"] == 1
            assert manifest["clauses"] <= manifest["original_clauses"]
            assert "--replay" in manifest["replay"]
            assert manifest_path.with_suffix(".cnf").is_file()
            found = replay_entry(manifest_path, solve_fn=lying_unsat_solver)
            assert any(
                d.oracle == manifest["oracle"] and d.kind == manifest["kind"]
                for d in found
            )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFuzzCli:
    def test_clean_campaign_exits_zero(self, capsys):
        code = cli_main(["fuzz", "--seeds", "4", "--budget", "800"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no discrepancies found" in out
        assert "fingerprint" in out

    def test_same_seed_same_fingerprint(self, capsys):
        cli_main(["fuzz", "--seeds", "4", "--budget", "800", "--base-seed", "9"])
        first = capsys.readouterr().out
        cli_main(["fuzz", "--seeds", "4", "--budget", "800", "--base-seed", "9"])
        second = capsys.readouterr().out
        fp = [line for line in first.splitlines() if line.startswith("fingerprint")]
        fp2 = [line for line in second.splitlines() if line.startswith("fingerprint")]
        assert fp[0].split()[1] == fp2[0].split()[1]

    def test_family_filter(self, capsys):
        code = cli_main([
            "fuzz", "--seeds", "3", "--budget", "500",
            "--families", "pigeonhole",
        ])
        assert code == 0
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_replay_clean_corpus_entry(self, tmp_path, capsys):
        corpus = FailureCorpus(tmp_path)
        manifest_path = corpus.add(
            pigeonhole(2),
            Discrepancy(
                oracle="brute-force", kind="status-mismatch", case="seeded",
                expected="UNSATISFIABLE", observed="SATISFIABLE",
            ),
            budget=2000,
        )
        code = cli_main(["fuzz", "--replay", str(manifest_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out
