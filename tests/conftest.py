"""Shared fixtures and hypothesis profiles for the test suite.

Hypothesis profiles pin property-based testing behaviour:

* ``ci`` (the default) — ``derandomize=True`` gives a fixed example
  stream, so tier-1 runs are bit-for-bit deterministic across machines
  and reruns; ``max_examples`` and ``deadline`` are set explicitly
  (``deadline=None`` deliberately: shared CI runners jitter enough to
  make per-example wall-clock deadlines flaky, and real hangs are
  caught by the job-level ``timeout-minutes``).
* ``dev`` — hypothesis defaults: fresh random examples every run, for
  local bug hunting beyond the pinned CI stream.

Select with ``HYPOTHESIS_PROFILE=dev pytest ...``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.cnf import CNF, pigeonhole, random_ksat

settings.register_profile(
    "ci", derandomize=True, max_examples=50, deadline=None, print_blob=True
)
settings.register_profile("dev", settings.get_profile("default"))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
from repro.selection.dataset import LabeledInstance
from repro.selection.labeling import PolicyComparison
from repro.solver.types import Status


@pytest.fixture
def simple_sat_cnf() -> CNF:
    """(x1 | x2) & (~x2 | x3) & (~x1 | ~x3) — satisfiable."""
    return CNF([[1, 2], [-2, 3], [-1, -3]])


@pytest.fixture
def simple_unsat_cnf() -> CNF:
    """All four sign patterns over two variables — unsatisfiable."""
    return CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])


@pytest.fixture
def php3() -> CNF:
    return pigeonhole(3)


@pytest.fixture
def medium_sat_cnf() -> CNF:
    """Random 3-SAT instance known (by construction check) to be SAT."""
    return random_ksat(30, 110, seed=5)


def make_labeled(cnf: CNF, label: int, year: int = 2022, family: str = "test") -> LabeledInstance:
    """Construct a LabeledInstance without running the solver."""
    comparison = PolicyComparison(
        default_result_status=Status.SATISFIABLE,
        frequency_result_status=Status.SATISFIABLE,
        default_propagations=1000,
        frequency_propagations=900 if label else 1000,
        label=label,
    )
    return LabeledInstance(cnf=cnf, year=year, family=family, comparison=comparison)
