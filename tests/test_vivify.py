"""Tests for clause vivification."""

from hypothesis import given, settings, strategies as st

from repro.cnf import CNF
from repro.simplify import Preprocessor, solve_with_preprocessing, vivify
from repro.solver import Status, brute_force_status


def fs(*lits):
    return frozenset(lits)


class TestVivify:
    def test_redundant_literal_dropped(self):
        # (1 2): assuming ¬1 propagates 2, so 3 is redundant in (1 2 3).
        clauses = [fs(1, 2), fs(1, 2, 3)]
        out, shortened = vivify(clauses)
        assert shortened == 1
        assert fs(1, 2) in out
        assert fs(1, 2, 3) not in out

    def test_implied_literal_truncates(self):
        # ¬1 propagates 2 via (1 2); clause (1 3 2) can become (1 2).
        clauses = [fs(1, 2), fs(1, 3, 2)]
        out, shortened = vivify(clauses)
        assert shortened == 1
        assert all(len(c) <= 2 or c == fs(1, 2) for c in out)

    def test_conflict_prefix(self):
        # ¬1 alone conflicts via units (1): clause (1 2 3) shrinks.
        clauses = [fs(1), fs(1, 2, 3)]
        out, shortened = vivify(clauses)
        assert shortened == 1

    def test_binary_clauses_skipped(self):
        clauses = [fs(1, 2), fs(-1, 3)]
        out, shortened = vivify(clauses, min_size=3)
        assert shortened == 0
        assert out == clauses

    def test_budget_respected(self):
        clauses = [fs(i, i + 1, i + 2) for i in range(1, 40, 3)]
        out, shortened = vivify(clauses, max_clauses=2)
        assert shortened <= 2

    def test_irreducible_untouched(self):
        clauses = [fs(1, 2, 3), fs(-1, -2, -3), fs(4, 5, 6)]
        out, shortened = vivify(clauses)
        assert shortened == 0
        assert set(out) == set(clauses)


class TestVivifyInPipeline:
    def test_pipeline_flag(self):
        cnf = CNF([[1, 2], [1, 2, 3], [-3, 4, 5]])
        result = Preprocessor(
            enable_vivification=True, enable_subsumption=False,
            enable_strengthening=False, enable_probing=False,
            enable_elimination=False,
        ).preprocess(cnf)
        assert result.stats.vivified_clauses >= 1

    def test_disabled_by_default(self):
        cnf = CNF([[1, 2], [1, 2, 3]])
        result = Preprocessor().preprocess(cnf)
        assert result.stats.vivified_clauses == 0


@st.composite
def small_cnfs(draw, max_vars=6, max_clauses=14):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(st.lists(literal, min_size=1, max_size=4), max_size=max_clauses)
    )
    return CNF(clauses, num_vars=num_vars)


@settings(max_examples=80, deadline=None)
@given(small_cnfs())
def test_property_vivification_preserves_satisfiability(cnf):
    baseline = brute_force_status(cnf)
    clauses = [frozenset(c.literals) for c in cnf.clauses if not c.is_tautology()]
    vivified, _ = vivify(clauses)
    rebuilt = CNF([sorted(c) for c in vivified], num_vars=cnf.num_vars)
    assert brute_force_status(rebuilt) is baseline


@settings(max_examples=50, deadline=None)
@given(small_cnfs())
def test_property_full_pipeline_with_vivification(cnf):
    expected = brute_force_status(cnf)
    result = solve_with_preprocessing(
        cnf, preprocessor=Preprocessor(enable_vivification=True)
    )
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
