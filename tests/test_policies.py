"""Tests for deletion policies and score packing (Figure 5, Eq. 2)."""

import pytest

from repro.policies import (
    DEFAULT_LAYOUT,
    FREQUENCY_LAYOUT,
    DefaultPolicy,
    FrequencyPolicy,
    clause_frequency,
    get_policy,
    negated,
    pack_fields,
    policy_names,
)
from repro.policies.registry import LABEL_TO_POLICY, policy_for_label
from repro.policies.score import FREQUENCY_FIRST_LAYOUT, ScoreLayout, clamp
from repro.solver.clause_db import SolverClause


def make_clause(num_lits, glue):
    return SolverClause([2 * (i + 1) for i in range(num_lits)], learned=True, glue=glue)


class TestScorePacking:
    def test_negated_inverts_within_field(self):
        assert negated(0, 8) == 255
        assert negated(255, 8) == 0
        assert negated(1, 8) == 254

    def test_negated_saturates(self):
        assert negated(10_000, 8) == 0

    def test_negated_rejects_negative(self):
        with pytest.raises(ValueError):
            negated(-1, 8)

    def test_clamp(self):
        assert clamp(300, 8) == 255
        assert clamp(5, 8) == 5

    def test_pack_fields_msb_first(self):
        assert pack_fields([(1, 8), (2, 8)]) == (1 << 8) | 2

    def test_pack_rejects_overflow_value(self):
        with pytest.raises(ValueError):
            pack_fields([(256, 8)])

    def test_pack_rejects_over_64_bits(self):
        with pytest.raises(ValueError):
            pack_fields([(0, 40), (0, 40)])

    def test_layout_pack_unpack_round_trip(self):
        score = FREQUENCY_LAYOUT.pack(neg_glue=7, neg_size=9, frequency=3)
        assert FREQUENCY_LAYOUT.unpack(score) == {
            "neg_glue": 7,
            "neg_size": 9,
            "frequency": 3,
        }

    def test_layout_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            FREQUENCY_LAYOUT.pack(neg_glue=1, neg_size=2)

    def test_layout_widths_match_figure5(self):
        assert dict(DEFAULT_LAYOUT.fields) == {"neg_glue": 32, "neg_size": 32}
        assert dict(FREQUENCY_LAYOUT.fields) == {
            "neg_glue": 20,
            "neg_size": 20,
            "frequency": 24,
        }
        assert DEFAULT_LAYOUT.total_bits == 64
        assert FREQUENCY_LAYOUT.total_bits == 64


class TestDefaultPolicy:
    def test_lower_glue_scores_higher(self):
        policy = DefaultPolicy()
        low = make_clause(5, glue=3)
        high = make_clause(5, glue=7)
        assert policy.score(low, [], 0) > policy.score(high, [], 0)

    def test_size_breaks_glue_ties(self):
        policy = DefaultPolicy()
        small = make_clause(3, glue=4)
        large = make_clause(9, glue=4)
        assert policy.score(small, [], 0) > policy.score(large, [], 0)

    def test_glue_dominates_size(self):
        policy = DefaultPolicy()
        low_glue_huge = make_clause(50, glue=3)
        high_glue_tiny = make_clause(3, glue=4)
        assert policy.score(low_glue_huge, [], 0) > policy.score(high_glue_tiny, [], 0)


class TestClauseFrequency:
    def test_counts_hot_variables(self):
        clause = SolverClause([2, 4, 6])  # vars 1, 2, 3
        freq = [0, 100, 90, 10]
        assert clause_frequency(clause, freq, 100, alpha=0.8) == 2

    def test_zero_max_frequency(self):
        clause = SolverClause([2, 4])
        assert clause_frequency(clause, [0, 0, 0], 0) == 0

    def test_strict_inequality_at_threshold(self):
        clause = SolverClause([2])
        # f_v == alpha * f_max exactly -> not counted (Eq. 2 is strict).
        assert clause_frequency(clause, [0, 80], 100, alpha=0.8) == 0

    def test_alpha_extremes(self):
        clause = SolverClause([2, 4])
        freq = [0, 1, 100]
        assert clause_frequency(clause, freq, 100, alpha=0.0) == 2
        assert clause_frequency(clause, freq, 100, alpha=1.0) == 0


class TestFrequencyPolicy:
    def test_glue_still_dominates(self):
        policy = FrequencyPolicy()
        hot_bad_glue = make_clause(3, glue=8)
        cold_good_glue = make_clause(3, glue=3)
        freq = [0] + [100] * 10
        assert policy.score(cold_good_glue, freq, 100) > policy.score(
            hot_bad_glue, freq, 100
        )

    def test_frequency_breaks_full_ties(self):
        policy = FrequencyPolicy()
        hot = SolverClause([2, 4, 6], learned=True, glue=4)
        cold = SolverClause([8, 10, 12], learned=True, glue=4)
        freq = [0, 100, 100, 100, 1, 1, 1]
        assert policy.score(hot, freq, 100) > policy.score(cold, freq, 100)

    def test_score_caches_frequency_on_clause(self):
        policy = FrequencyPolicy()
        clause = make_clause(3, glue=4)
        freq = [0, 100, 100, 1]
        policy.score(clause, freq, 100)
        assert clause.frequency == 2

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            FrequencyPolicy(alpha=1.5)

    def test_alternative_layout_reorders(self):
        first = FrequencyPolicy(layout=FREQUENCY_FIRST_LAYOUT)
        hot_bad_glue = SolverClause([2, 4, 6], learned=True, glue=9)
        cold_good_glue = SolverClause([8, 10, 12], learned=True, glue=3)
        freq = [0, 100, 100, 100, 0, 0, 0]
        # With frequency as the most significant field the hot clause wins.
        assert first.score(hot_bad_glue, freq, 100) > first.score(
            cold_good_glue, freq, 100
        )

    def test_begin_round_sets_threshold(self):
        policy = FrequencyPolicy(alpha=0.5)
        policy.begin_round([0, 10], 10)
        assert policy._threshold == pytest.approx(5.0)


class TestRegistry:
    def test_names(self):
        assert policy_names() == ["default", "frequency"]

    def test_get_policy(self):
        assert isinstance(get_policy("default"), DefaultPolicy)
        assert isinstance(get_policy("frequency"), FrequencyPolicy)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            get_policy("nope")

    def test_label_mapping_matches_paper(self):
        # Sec 5.1: label 1 <=> new (frequency) policy wins.
        assert LABEL_TO_POLICY == {0: "default", 1: "frequency"}
        assert policy_for_label(0).name == "default"
        assert policy_for_label(1).name == "frequency"
