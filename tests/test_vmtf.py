"""Tests for the VMTF decision heuristic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.solver import Solver, SolverConfig, Status, VMTFDecider, brute_force_status
from repro.solver.assignment import Trail
from repro.solver.types import encode


class TestQueueMechanics:
    def make(self, n=5):
        return VMTFDecider(Trail(n))

    def test_initial_order_is_reverse_insertion(self):
        decider = self.make(3)
        # Variables pushed front in order 1, 2, 3 -> front is 3.
        assert decider.pick_branch_variable() == 3

    def test_bump_moves_to_front(self):
        decider = self.make(4)
        decider.bump(2)
        assert decider.pick_branch_variable() == 2

    def test_bump_front_refreshes_stamp(self):
        decider = self.make(3)
        decider.bump(3)  # already front
        decider.bump(1)
        decider.bump(3)
        assert decider.pick_branch_variable() == 3

    def test_assigned_variables_skipped(self):
        decider = self.make(3)
        decider.trail.assign(encode(3), None)
        assert decider.pick_branch_variable() == 2

    def test_none_when_all_assigned(self):
        decider = self.make(2)
        decider.trail.assign(encode(1), None)
        decider.trail.assign(encode(2), None)
        assert decider.pick_branch_variable() is None

    def test_requeue_moves_search_back(self):
        decider = self.make(3)
        trail = decider.trail
        trail.new_decision_level()
        trail.assign(encode(3), None)
        assert decider.pick_branch_variable() == 2
        for lit in trail.backtrack(0):
            decider.requeue(lit >> 1)
        assert decider.pick_branch_variable() == 3

    def test_phase_saving(self):
        decider = self.make(2)
        decider.save_phase(2, False)
        assert decider.pick_branch_literal() == encode(-2)

    def test_rephase_styles(self):
        decider = self.make(2)
        decider.rephase("inverted", initial_phase=True)
        assert decider.saved_phase[1] is False
        decider.rephase("original", initial_phase=True)
        assert decider.saved_phase[1] is True
        with pytest.raises(ValueError):
            decider.rephase("nope")


class TestSolverIntegration:
    def test_invalid_heuristic_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(decision_heuristic="magic")

    def test_solves_sat_and_unsat(self):
        config = SolverConfig(decision_heuristic="vmtf")
        sat = random_ksat(30, 110, seed=2)
        result = Solver(sat, config=config).solve()
        if result.is_sat:
            assert sat.check_model(result.model)
        unsat = CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert Solver(unsat, config=config).solve().status is Status.UNSATISFIABLE

    def test_vmtf_and_vsids_agree_on_status(self):
        for seed in range(4):
            cnf = random_ksat(25, 105, seed=seed)
            vsids = Solver(cnf, config=SolverConfig(decision_heuristic="vsids")).solve()
            vmtf = Solver(cnf, config=SolverConfig(decision_heuristic="vmtf")).solve()
            assert vsids.status is vmtf.status


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_vmtf_matches_oracle(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 9)
    m = rng.randint(1, 32)
    cnf = random_ksat(n, m, k=min(3, n), seed=seed)
    config = SolverConfig(decision_heuristic="vmtf", luby_base=5)
    result = Solver(cnf, config=config).solve()
    assert result.status is brute_force_status(cnf)
    if result.is_sat:
        assert cnf.check_model(result.model)
