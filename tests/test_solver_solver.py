"""Integration tests for the full CDCL solver."""

import pytest

from repro.cnf import CNF, parity_chain, pigeonhole, random_ksat
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver import (
    ProofLog,
    Solver,
    SolverConfig,
    Status,
    check_drat,
    dpll_solve,
    solve,
)


class TestBasicSolving:
    def test_satisfiable_returns_valid_model(self, simple_sat_cnf):
        result = Solver(simple_sat_cnf).solve()
        assert result.status is Status.SATISFIABLE
        assert simple_sat_cnf.check_model(result.model)

    def test_unsatisfiable(self, simple_unsat_cnf):
        result = Solver(simple_unsat_cnf).solve()
        assert result.status is Status.UNSATISFIABLE
        assert result.model is None

    def test_empty_formula_is_sat(self):
        result = Solver(CNF()).solve()
        assert result.status is Status.SATISFIABLE

    def test_empty_clause_is_unsat(self):
        result = Solver(CNF([[]])).solve()
        assert result.status is Status.UNSATISFIABLE

    def test_contradictory_units(self):
        result = Solver(CNF([[1], [-1]])).solve()
        assert result.status is Status.UNSATISFIABLE

    def test_single_unit(self):
        result = Solver(CNF([[-3]])).solve()
        assert result.status is Status.SATISFIABLE
        assert result.model[3] is False

    def test_tautologies_ignored(self):
        result = Solver(CNF([[1, -1], [2]])).solve()
        assert result.status is Status.SATISFIABLE
        assert result.model[2] is True

    def test_unused_variables_get_default_phase(self):
        cnf = CNF([[1]], num_vars=5)
        result = Solver(cnf, config=SolverConfig(initial_phase=False)).solve()
        assert result.model[5] is False

    def test_solve_helper(self, simple_sat_cnf):
        assert solve(simple_sat_cnf).status is Status.SATISFIABLE

    def test_result_flags(self, simple_sat_cnf, simple_unsat_cnf):
        assert Solver(simple_sat_cnf).solve().is_sat
        assert Solver(simple_unsat_cnf).solve().is_unsat


class TestHarderInstances:
    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        result = Solver(pigeonhole(holes)).solve()
        assert result.status is Status.UNSATISFIABLE
        assert result.stats.conflicts > 0

    def test_parity_contradiction(self):
        cnf = parity_chain(8, seed=1, contradiction=True)
        assert Solver(cnf).solve().status is Status.UNSATISFIABLE

    @pytest.mark.parametrize("seed", range(5))
    def test_differential_vs_dpll(self, seed):
        cnf = random_ksat(25, 105, seed=seed)
        expected, _ = dpll_solve(cnf)
        for policy in (DefaultPolicy(), FrequencyPolicy()):
            result = Solver(cnf, policy=policy).solve()
            assert result.status is expected
            if result.is_sat:
                assert cnf.check_model(result.model)

    def test_exercises_reduction(self):
        cnf = random_ksat(120, 510, seed=3)
        config = SolverConfig(reduce_interval=50, reduce_interval_growth=20)
        result = Solver(cnf, config=config).solve(max_conflicts=5000)
        assert result.stats.reductions > 0
        assert result.stats.deleted_clauses > 0

    def test_exercises_restarts(self):
        cnf = pigeonhole(6)
        config = SolverConfig(luby_base=20)
        result = Solver(cnf, config=config).solve()
        assert result.status is Status.UNSATISFIABLE
        assert result.stats.restarts > 0

    def test_deterministic_replay(self):
        cnf = random_ksat(60, 255, seed=9)
        r1 = Solver(cnf).solve()
        r2 = Solver(cnf).solve()
        assert r1.status is r2.status
        assert r1.stats.propagations == r2.stats.propagations
        assert r1.stats.conflicts == r2.stats.conflicts


class TestBudgets:
    def test_conflict_budget(self):
        cnf = pigeonhole(7)
        result = Solver(cnf).solve(max_conflicts=10)
        assert result.status is Status.UNKNOWN
        assert result.stats.conflicts <= 11

    def test_propagation_budget(self):
        cnf = pigeonhole(7)
        result = Solver(cnf).solve(max_propagations=100)
        assert result.status is Status.UNKNOWN

    def test_decision_budget(self):
        cnf = random_ksat(50, 210, seed=0)
        result = Solver(cnf).solve(max_decisions=3)
        assert result.status is Status.UNKNOWN

    def test_budget_none_means_unbounded(self, simple_sat_cnf):
        result = Solver(simple_sat_cnf).solve(max_conflicts=None)
        assert result.status is Status.SATISFIABLE


class TestAssumptions:
    def test_assumption_forces_polarity(self, simple_sat_cnf):
        result = Solver(simple_sat_cnf).solve(assumptions=[1])
        assert result.status is Status.SATISFIABLE
        assert result.model[1] is True

    def test_conflicting_assumptions_unsat(self, simple_sat_cnf):
        result = Solver(simple_sat_cnf).solve(assumptions=[1, 3])
        # x1 and x3 true violates (~x1 | ~x3).
        assert result.status is Status.UNSATISFIABLE

    def test_assumption_against_unit(self):
        cnf = CNF([[1], [2, 3]])
        result = Solver(cnf).solve(assumptions=[-1])
        assert result.status is Status.UNSATISFIABLE

    def test_unknown_assumption_variable_rejected(self, simple_sat_cnf):
        with pytest.raises(ValueError):
            Solver(simple_sat_cnf).solve(assumptions=[99])

    def test_solver_reusable_across_assumption_calls(self, simple_sat_cnf):
        solver = Solver(simple_sat_cnf)
        assert solver.solve(assumptions=[1]).status is Status.SATISFIABLE
        # Note: incremental reuse keeps learned clauses; formula unchanged.
        assert solver.solve(assumptions=[-1]).status is Status.SATISFIABLE


class TestProofLogging:
    def test_unsat_proof_checks(self, php3):
        proof = ProofLog()
        result = Solver(php3, proof=proof).solve()
        assert result.status is Status.UNSATISFIABLE
        assert check_drat(php3, proof.text())

    def test_proof_with_deletions_checks(self):
        cnf = random_ksat(60, 280, seed=11)
        proof = ProofLog()
        config = SolverConfig(reduce_interval=50, reduce_interval_growth=10)
        result = Solver(cnf, policy=FrequencyPolicy(), config=config, proof=proof).solve()
        if result.status is Status.UNSATISFIABLE:
            assert proof.deletions > 0
            assert check_drat(cnf, proof.text())

    def test_proof_file_backend(self, tmp_path, php3):
        path = tmp_path / "proof.drat"
        with ProofLog(path) as proof:
            Solver(php3, proof=proof).solve()
        text = path.read_text()
        assert text.strip().endswith("0")
        assert check_drat(php3, text)


class TestStatistics:
    def test_counters_populated(self):
        cnf = random_ksat(40, 170, seed=2)
        result = Solver(cnf).solve()
        stats = result.stats
        assert stats.decisions > 0
        assert stats.propagations > 0
        if stats.conflicts:
            assert stats.learned_clauses > 0
            assert stats.mean_glue() > 0
            assert stats.mean_learned_size() > 0

    def test_to_dict_includes_derived(self):
        cnf = random_ksat(20, 85, seed=1)
        stats = Solver(cnf).solve().stats
        d = stats.to_dict()
        assert "mean_glue" in d and "propagations" in d

    def test_reset(self):
        cnf = random_ksat(20, 85, seed=1)
        stats = Solver(cnf).solve().stats
        stats.reset()
        assert stats.propagations == 0 and stats.conflicts == 0


class TestConfig:
    def test_invalid_restart_mode_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(restart_mode="bogus")

    @pytest.mark.parametrize("mode", ["luby", "ema", "none"])
    def test_all_restart_modes_solve(self, mode, medium_sat_cnf):
        config = SolverConfig(restart_mode=mode)
        result = Solver(medium_sat_cnf, config=config).solve()
        assert result.status is Status.SATISFIABLE

    def test_policy_name_propagates_to_result(self, simple_sat_cnf):
        result = Solver(simple_sat_cnf, policy=FrequencyPolicy()).solve()
        assert result.policy_name == "frequency"
