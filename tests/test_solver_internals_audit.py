"""Post-solve audit of solver-internal invariants.

After any solve, the engine's data structures must be internally
consistent: watch lists point at the first two literals of live
clauses, learned clauses are well-formed (distinct literals, sane glue),
and level-0 assignments are genuine formula consequences.
"""

import pytest

from repro.cnf import random_ksat, pigeonhole
from repro.policies import FrequencyPolicy
from repro.selection.labeling import default_labeling_config
from repro.solver import Solver, Status


def audit(solver: Solver) -> None:
    """Assert every internal invariant we can check from outside."""
    # -- clause hygiene ---------------------------------------------------
    for clause in solver.clause_db.original + solver.clause_db.learned:
        if clause.garbage:
            continue
        variables = [lit >> 1 for lit in clause.lits]
        assert len(set(clause.lits)) == len(clause.lits), "duplicate literals"
        assert len(set(variables)) == len(variables), "tautological clause"
        assert len(clause.lits) >= 2, "unit clauses never live in the DB"
        if clause.learned:
            assert clause.glue >= 1

    # -- watch invariant ---------------------------------------------------
    in_binary_table = {
        id(rec[1]) for lst in solver.watches.binary for rec in lst
    }
    in_long_table = {
        id(rec[1]) for lst in solver.watches.watches for rec in lst
    }
    for clause in solver.clause_db.live_clauses():
        for watched in clause.lits[:2]:
            assert clause in solver.watches.watchers_of(watched), (
                "watched literal not registered"
            )
        # Each clause lives in exactly one table, picked by its length.
        if len(clause.lits) == 2:
            assert id(clause) not in in_long_table, "binary in long table"
        else:
            assert id(clause) not in in_binary_table, "long clause in binary table"

    # -- watcher records are well-formed and reference known clauses --------
    known = set(
        id(c) for c in solver.clause_db.original + solver.clause_db.learned
    )
    for table in (solver.watches.binary, solver.watches.watches):
        for lst in table:
            for blocker, clause in lst:
                assert id(clause) in known or clause.garbage
                if not clause.garbage:
                    assert blocker in clause.lits, "blocker outside clause"

    # -- trail sanity -------------------------------------------------------
    seen_vars = set()
    for lit in solver.trail.trail:
        var = lit >> 1
        assert var not in seen_vars, "variable assigned twice on the trail"
        seen_vars.add(var)
        assert solver.trail.values[var] != -1


@pytest.mark.parametrize("seed", range(6))
def test_invariants_after_random_solve(seed):
    cnf = random_ksat(60, 255, seed=seed)
    solver = Solver(cnf, config=default_labeling_config())
    solver.solve(max_conflicts=2000)
    audit(solver)


def test_invariants_after_reduction_heavy_run():
    cnf = random_ksat(150, 645, seed=2)
    solver = Solver(
        cnf, policy=FrequencyPolicy(), config=default_labeling_config()
    )
    result = solver.solve(max_conflicts=4000)
    assert result.stats.reductions > 0
    audit(solver)


def test_invariants_after_unsat():
    solver = Solver(pigeonhole(5))
    assert solver.solve().status is Status.UNSATISFIABLE
    audit(solver)


def test_invariants_survive_incremental_use():
    cnf = random_ksat(40, 160, seed=2)
    solver = Solver(cnf)
    solver.solve()
    solver.add_clause([-1, -2])
    solver.solve()
    solver.add_clause([3])
    solver.solve(assumptions=[4])
    audit(solver)
