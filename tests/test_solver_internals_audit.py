"""Post-solve audit of solver-internal invariants, for both cores.

After any solve, the engine's data structures must be internally
consistent: watch lists point at live clauses, learned clauses are
well-formed (distinct literals, sane glue), and trail bookkeeping is
coherent.  The checks are representation-specific — the object core is
audited through its clause objects and watcher records, the arena core
through its flat buffer, metadata arrays, and offset tables — so each
parametrized test runs the matching auditor.
"""

import pytest

from repro.cnf import random_ksat, pigeonhole
from repro.policies import FrequencyPolicy
from repro.selection.labeling import default_labeling_config
from repro.solver import Solver, SolverConfig, Status


def audit_object(solver: Solver) -> None:
    """Assert every object-core invariant we can check from outside."""
    # -- clause hygiene ---------------------------------------------------
    for clause in solver.clause_db.original + solver.clause_db.learned:
        if clause.garbage:
            continue
        variables = [lit >> 1 for lit in clause.lits]
        assert len(set(clause.lits)) == len(clause.lits), "duplicate literals"
        assert len(set(variables)) == len(variables), "tautological clause"
        assert len(clause.lits) >= 2, "unit clauses never live in the DB"
        if clause.learned:
            assert clause.glue >= 1

    # -- watch invariant ---------------------------------------------------
    in_binary_table = {
        id(rec[1]) for lst in solver.watches.binary for rec in lst
    }
    in_long_table = {
        id(rec[1]) for lst in solver.watches.watches for rec in lst
    }
    for clause in solver.clause_db.live_clauses():
        for watched in clause.lits[:2]:
            assert clause in solver.watches.watchers_of(watched), (
                "watched literal not registered"
            )
        # Each clause lives in exactly one table, picked by its length.
        if len(clause.lits) == 2:
            assert id(clause) not in in_long_table, "binary in long table"
        else:
            assert id(clause) not in in_binary_table, "long clause in binary table"

    # -- watcher records are well-formed and reference known clauses --------
    known = set(
        id(c) for c in solver.clause_db.original + solver.clause_db.learned
    )
    for table in (solver.watches.binary, solver.watches.watches):
        for lst in table:
            for blocker, clause in lst:
                assert id(clause) in known or clause.garbage
                if not clause.garbage:
                    assert blocker in clause.lits, "blocker outside clause"

    audit_trail(solver)


def audit_arena(solver: Solver) -> None:
    """Assert every arena-core invariant we can check from outside."""
    arena = solver.clause_db
    data = arena.data
    watches = solver.watches

    # -- arena block structure: back-to-back [id, size, lits...] ------------
    walked = set()
    pos = 0
    while pos < len(data):
        cid = data[pos]
        size = data[pos + 1]
        assert 0 <= cid < len(arena.offset), "block id out of range"
        assert arena.offset[cid] == pos + 2, "offset table disagrees with block"
        assert size >= 2, "unit/empty clause in the arena"
        assert not arena.garbage[cid], "garbage block survived compaction"
        walked.add(cid)
        pos += 2 + size
    assert pos == len(data), "trailing bytes after the last block"
    live = set(arena.live_ids())
    assert walked == live, "live-id view disagrees with the arena walk"
    for cid in range(len(arena.offset)):
        if cid not in live:
            assert arena.offset[cid] == -1, "garbage id kept an offset"

    # -- clause hygiene -----------------------------------------------------
    for cid in live:
        lits = arena.literals(cid)
        variables = [lit >> 1 for lit in lits]
        assert len(set(lits)) == len(lits), "duplicate literals"
        assert len(set(variables)) == len(variables), "tautological clause"
        if arena.learned[cid]:
            assert arena.glue[cid] >= 1

    # -- watch invariant: every clause in exactly the right table -----------
    for cid in live:
        lits = arena.literals(cid)
        if len(lits) == 2:
            a, b = lits
            assert b in watches.binary[a] and a in watches.binary[b], (
                "binary watcher pair missing"
            )
        elif len(lits) == 3:
            for lit in lits:
                assert (
                    watches.ternary_watch_ids(lit).count(cid) == 1
                ), "ternary clause not watched on all three literals"
        else:
            watched = [
                lit for lit in lits if cid in watches.long_watch_ids(lit)
            ]
            assert watched == lits[:2], (
                "long clause must be watched on exactly its first two slots"
            )

    # -- watcher records reference live clauses with sane blockers ----------
    for lit in range(len(watches.watches)):
        lst = watches.watches[lit]
        for i in range(0, len(lst), 2):
            blocker, off = lst[i], lst[i + 1]
            cid = data[off - 2]
            assert cid in live, "watcher references a dead clause"
            lits = arena.literals(cid)
            assert lit in lits[:2], "watcher literal not in a watch slot"
            assert blocker in lits, "blocker outside clause"
        tlst = watches.ternary[lit]
        for i in range(0, len(tlst), 3):
            o1, o2, cid = tlst[i], tlst[i + 1], tlst[i + 2]
            assert cid in live, "ternary watcher references a dead clause"
            assert sorted(arena.literals(cid)) == sorted([lit, o1, o2]), (
                "ternary record disagrees with the clause"
            )

    # -- reason references survive deletion/compaction ----------------------
    for lit in solver.trail.trail:
        var = lit >> 1
        reason = solver.trail.reasons[var]
        if reason is None or reason < 0:
            continue  # decision / binary reason: nothing to dangle
        assert reason in live, "reason clause was deleted"
        rlits = arena.literals(reason)
        assert lit in rlits, "implied literal missing from its reason"

    # -- metadata arrays stay parallel --------------------------------------
    n = len(arena.offset)
    for array in (
        arena.glue,
        arena.activity,
        arena.used,
        arena.garbage,
        arena.frequency,
        arena.learned,
    ):
        assert len(array) == n, "metadata array out of sync with ids"

    # -- int32 discipline ----------------------------------------------------
    arena.as_int32()

    audit_trail(solver)


def audit_trail(solver: Solver) -> None:
    seen_vars = set()
    for lit in solver.trail.trail:
        var = lit >> 1
        assert var not in seen_vars, "variable assigned twice on the trail"
        seen_vars.add(var)
        assert solver.trail.value_var(var) != -1


AUDITS = {"object": audit_object, "arena": audit_arena}


def audit(solver: Solver) -> None:
    AUDITS[solver.config.core](solver)


def core_config(core: str, **overrides) -> SolverConfig:
    base = default_labeling_config()
    base.core = core
    for key, value in overrides.items():
        setattr(base, key, value)
    return base


@pytest.mark.parametrize("core", ["object", "arena"])
@pytest.mark.parametrize("seed", range(6))
def test_invariants_after_random_solve(seed, core):
    cnf = random_ksat(60, 255, seed=seed)
    solver = Solver(cnf, config=core_config(core))
    solver.solve(max_conflicts=2000)
    audit(solver)


@pytest.mark.parametrize("core", ["object", "arena"])
def test_invariants_after_reduction_heavy_run(core):
    cnf = random_ksat(150, 645, seed=2)
    solver = Solver(cnf, policy=FrequencyPolicy(), config=core_config(core))
    result = solver.solve(max_conflicts=4000)
    assert result.stats.reductions > 0
    audit(solver)


@pytest.mark.parametrize("core", ["object", "arena"])
def test_invariants_after_unsat(core):
    solver = Solver(pigeonhole(5), config=SolverConfig(core=core))
    assert solver.solve().status is Status.UNSATISFIABLE
    audit(solver)


@pytest.mark.parametrize("core", ["object", "arena"])
def test_invariants_survive_incremental_use(core):
    cnf = random_ksat(40, 160, seed=2)
    solver = Solver(cnf, config=SolverConfig(core=core))
    solver.solve()
    solver.add_clause([-1, -2])
    solver.solve()
    solver.add_clause([3])
    solver.solve(assumptions=[4])
    audit(solver)
