"""Property-based tests (hypothesis) for the CDCL solver and substrates.

The central invariant: on any small formula, the CDCL solver — under any
deletion policy and any restart mode — agrees with an independent
brute-force oracle, returns only verified models, and emits checkable
UNSAT proofs.
"""

from hypothesis import given, settings, strategies as st

from repro.cnf import CNF
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver import (
    ProofLog,
    Solver,
    SolverConfig,
    Status,
    brute_force_status,
    check_drat,
    dpll_solve,
)


@st.composite
def small_cnfs(draw, max_vars: int = 8, max_clauses: int = 24, max_len: int = 4):
    """Random small CNFs, including empty clauses and duplicate literals."""
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    num_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literal, min_size=0, max_size=max_len),
            min_size=num_clauses,
            max_size=num_clauses,
        )
    )
    return CNF(clauses, num_vars=num_vars)


@settings(max_examples=120, deadline=None)
@given(small_cnfs())
def test_cdcl_matches_brute_force(cnf):
    expected = brute_force_status(cnf)
    result = Solver(cnf).solve()
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)


@settings(max_examples=60, deadline=None)
@given(small_cnfs())
def test_policies_agree_on_status(cnf):
    default = Solver(cnf, policy=DefaultPolicy()).solve()
    frequency = Solver(cnf, policy=FrequencyPolicy()).solve()
    assert default.status is frequency.status


@settings(max_examples=60, deadline=None)
@given(small_cnfs(), st.sampled_from(["luby", "ema", "none"]))
def test_restart_modes_agree(cnf, mode):
    expected = brute_force_status(cnf)
    config = SolverConfig(restart_mode=mode, luby_base=5)
    assert Solver(cnf, config=config).solve().status is expected


@settings(max_examples=60, deadline=None)
@given(small_cnfs())
def test_unsat_proofs_check(cnf):
    proof = ProofLog()
    result = Solver(cnf, proof=proof).solve()
    if result.status is Status.UNSATISFIABLE:
        assert check_drat(cnf, proof.text())


@settings(max_examples=60, deadline=None)
@given(small_cnfs())
def test_dpll_oracle_agrees_with_brute_force(cnf):
    # Cross-check the two oracles against each other.
    assert dpll_solve(cnf)[0] is brute_force_status(cnf)


@settings(max_examples=40, deadline=None)
@given(small_cnfs(), st.integers(min_value=1, max_value=8))
def test_assumptions_consistent_with_conditioning(cnf, var):
    """Solving with assumption v == adding the unit clause [v]."""
    if var > cnf.num_vars:
        var = cnf.num_vars
    assumed = Solver(cnf).solve(assumptions=[var])
    conditioned = CNF([list(c.literals) for c in cnf.clauses] + [[var]])
    direct = Solver(conditioned).solve()
    assert assumed.status is direct.status


@settings(max_examples=40, deadline=None)
@given(small_cnfs())
def test_aggressive_reduction_is_sound(cnf):
    """Deleting learned clauses never changes the answer."""
    config = SolverConfig(
        reduce_interval=1, reduce_interval_growth=0,
        reduce_fraction=1.0, protect_used=False, keep_glue=0,
    )
    assert Solver(cnf, config=config).solve().status is brute_force_status(cnf)


@settings(max_examples=50, deadline=None)
@given(small_cnfs())
def test_budget_exhaustion_never_misreports(cnf):
    """A budgeted run may say UNKNOWN but never the wrong decided answer."""
    result = Solver(cnf).solve(max_conflicts=2)
    if result.status is not Status.UNKNOWN:
        assert result.status is brute_force_status(cnf)
