"""Tests for mode-switching restarts and rephasing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, pigeonhole, random_ksat
from repro.solver import Solver, SolverConfig, Status, brute_force_status
from repro.solver.assignment import Trail
from repro.solver.decide import Decider
from repro.solver.restart import SwitchingRestarts
from repro.solver.types import encode


class TestSwitchingRestarts:
    def test_starts_focused(self):
        policy = SwitchingRestarts(mode_interval=10)
        assert not policy.in_stable

    def test_switches_after_interval(self):
        policy = SwitchingRestarts(mode_interval=5)
        for _ in range(5):
            policy.on_conflict(glue=3)
        assert policy.in_stable
        assert policy.switches == 1

    def test_interval_doubles(self):
        policy = SwitchingRestarts(mode_interval=4)
        for _ in range(4):
            policy.on_conflict(glue=3)
        assert policy.switches == 1
        # Next switch after 8 more conflicts.
        for _ in range(7):
            policy.on_conflict(glue=3)
        assert policy.switches == 1
        policy.on_conflict(glue=3)
        assert policy.switches == 2
        assert not policy.in_stable

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SwitchingRestarts(mode_interval=0)

    def test_solver_mode(self):
        cnf = pigeonhole(5)
        config = SolverConfig(restart_mode="switching", luby_base=20)
        result = Solver(cnf, config=config).solve()
        assert result.status is Status.UNSATISFIABLE


class TestRephasing:
    def make_decider(self, num_vars=4):
        return Decider(Trail(num_vars), initial_phase=True)

    def test_original_and_inverted(self):
        decider = self.make_decider()
        decider.save_phase(1, False)
        decider.rephase("original", initial_phase=True)
        assert all(decider.saved_phase[1:])
        decider.rephase("inverted", initial_phase=True)
        assert not any(decider.saved_phase[1:])

    def test_best_falls_back_without_snapshot(self):
        decider = self.make_decider()
        decider.rephase("best", initial_phase=False)
        assert not any(decider.saved_phase[1:])

    def test_best_restores_snapshot(self):
        decider = self.make_decider()
        decider.trail.assign(encode(1), None)
        decider.trail.assign(encode(-2), None)
        decider.snapshot_best_phases()
        decider.rephase("inverted", initial_phase=True)
        decider.rephase("best", initial_phase=True)
        assert decider.saved_phase[1] is True
        assert decider.saved_phase[2] is False

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            self.make_decider().rephase("weird")

    def test_solver_with_rephasing_solves(self):
        cnf = random_ksat(60, 255, seed=4)
        config = SolverConfig(rephase_interval=50)
        baseline = Solver(cnf).solve()
        rephased = Solver(cnf, config=config).solve()
        assert rephased.status is baseline.status


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=5000),
    st.sampled_from(["switching", "luby"]),
    st.sampled_from([0, 3]),
)
def test_property_modes_preserve_correctness(seed, mode, rephase):
    """Any restart/rephase configuration gives the oracle's answer."""
    import random as stdlib_random

    rng = stdlib_random.Random(seed)
    n = rng.randint(3, 9)
    m = rng.randint(1, 30)
    cnf = random_ksat(n, m, k=min(3, n), seed=seed)
    config = SolverConfig(
        restart_mode=mode, luby_base=5, rephase_interval=rephase
    )
    result = Solver(cnf, config=config).solve()
    assert result.status is brute_force_status(cnf)
    if result.is_sat:
        assert cnf.check_model(result.model)
