"""Cross-module integration tests: the full paper pipeline in miniature."""

import numpy as np
import pytest

from repro.bench import (
    fig3_propagation_frequency,
    fig4_policy_scatter,
    fig7_table3_end_to_end,
    table2_classification,
)
from repro.cnf import random_ksat, to_dimacs, parse_dimacs
from repro.models import NeuroSelect
from repro.nn import load_module, save_module
from repro.selection import NeuroSelectSolver, Trainer, build_dataset
from repro.solver import Solver, Status


@pytest.fixture(scope="module")
def mini_dataset():
    """A small but real dataset: every label comes from actual solver runs."""
    return build_dataset(instances_per_year=2, max_conflicts=2000)


class TestFullPipeline:
    def test_dataset_to_training_to_selection(self, mini_dataset):
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, learning_rate=3e-3, epochs=5)
        history = trainer.fit(mini_dataset.train)
        assert len(history.losses) == 5

        selector = NeuroSelectSolver(model)
        for inst in mini_dataset.test:
            outcome = selector.solve(inst.cnf, max_conflicts=2000)
            assert outcome.result.status in (
                Status.SATISFIABLE,
                Status.UNSATISFIABLE,
                Status.UNKNOWN,
            )
            if outcome.result.is_sat:
                assert inst.cnf.check_model(outcome.result.model)

    def test_model_round_trips_through_disk(self, mini_dataset, tmp_path):
        model = NeuroSelect(hidden_dim=8, seed=3)
        Trainer(model, learning_rate=3e-3, epochs=2).fit(mini_dataset.train)
        path = tmp_path / "weights.npz"
        save_module(model, path)
        clone = NeuroSelect(hidden_dim=8, seed=99)
        load_module(clone, path)
        cnf = mini_dataset.test[0].cnf
        assert model.predict_proba(cnf) == pytest.approx(clone.predict_proba(cnf))

    def test_experiment_drivers_compose(self, mini_dataset):
        model = NeuroSelect(hidden_dim=8, seed=0)
        t2 = table2_classification(
            mini_dataset, models={"NeuroSelect": model}, epochs=2
        )
        assert len(t2.rows) == 1
        e2e = fig7_table3_end_to_end(mini_dataset.test, model, max_propagations=30_000)
        f4 = fig4_policy_scatter(mini_dataset.test, max_propagations=30_000)
        # The suites cover the same instances under the same budget: the
        # selector's per-instance time equals one of the two policies'
        # (plus inference, which the scatter omits).
        for i in range(len(mini_dataset.test)):
            chosen = e2e.neuroselect_seconds[i] - e2e.inference_seconds[i]
            # Tolerance absorbs the timeout cap applied after adding the
            # (tiny) inference time.
            close_to = lambda x: abs(chosen - x) < 0.1
            assert close_to(f4.default_seconds[i]) or close_to(f4.frequency_seconds[i])

    def test_dimacs_round_trip_preserves_solver_behaviour(self):
        cnf = random_ksat(40, 170, seed=5)
        reparsed = parse_dimacs(to_dimacs(cnf))
        a = Solver(cnf).solve()
        b = Solver(reparsed).solve()
        assert a.status is b.status
        assert a.stats.propagations == b.stats.propagations

    def test_fig3_skew_holds_across_families(self):
        """The Figure 3 observation is not an artifact of one instance."""
        from repro.cnf import community_sat, parity_chain

        for cnf in (
            random_ksat(100, 426, seed=1),
            community_sat(2, 80, 330, seed=2),
            parity_chain(12, seed=3, contradiction=True),
        ):
            result = fig3_propagation_frequency(cnf, max_conflicts=2000)
            if result.total_propagations < 1000:
                continue  # too easy to say anything
            assert result.gini > 0.1
