"""Fault-path tests for the supervised execution layer.

Every failure mode is driven through the deterministic ``FaultPlan``
injector — a chosen fault at a chosen task index and attempt number,
inside the worker process — so the tests exercise worker exceptions,
hard kills, hangs, memouts, transient-then-clean retries, journal
resume, and cache corruption recovery without sleeps or timing luck.
"""

import json

import pytest

from repro.cnf import random_ksat
from repro.parallel import (
    Fault,
    FaultPlan,
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    RunJournal,
    SolveTask,
    WorkerBudget,
)
from repro.selection import label_instances
from repro.selection.labeling import default_labeling_config
from repro.solver import Status

#: Hang-interruption budget: generous against CI jitter, but the hang
#: fault sleeps for an hour, so the kill is what ends the task either way.
TIMEOUT = 2.0


def make_tasks(count=4, seed_base=10, policy="default", max_conflicts=400):
    config = default_labeling_config()
    return [
        SolveTask(
            cnf=random_ksat(30, 126, seed=seed_base + i),
            policy=policy,
            config=config,
            max_conflicts=max_conflicts,
            tag=f"t{i}",
        )
        for i in range(count)
    ]


class TestConfigValidation:
    def test_budget_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WorkerBudget(wall_seconds=0)
        with pytest.raises(ValueError):
            WorkerBudget(rss_mb=-1)

    def test_retry_policy_rejects_negative(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_retry_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            max_retries=5, backoff_seconds=1.0, multiplier=2.0,
            max_backoff_seconds=3.0,
        )
        assert [policy.delay_for(k) for k in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]

    def test_fault_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault("explode")

    def test_fault_attempt_windows(self):
        transient = Fault("raise", attempts=2)
        permanent = Fault("raise")
        assert transient.applies(1) and transient.applies(2)
        assert not transient.applies(3)
        assert permanent.applies(99)


class TestFailureIsolation:
    def test_worker_exception_becomes_error_outcome(self):
        tasks = make_tasks(4)
        runner = ParallelRunner(
            workers=2, fault_plan=FaultPlan({1: Fault("raise", message="boom")})
        )
        outcomes = runner.run(tasks)
        # Exactly one outcome per task, in task order — no silent drops.
        assert [o.tag for o in outcomes] == [t.tag for t in tasks]
        assert outcomes[1].status is Status.ERROR
        assert "boom" in outcomes[1].error
        assert not outcomes[1].solved and outcomes[1].failed
        for sibling in (outcomes[0], outcomes[2], outcomes[3]):
            assert sibling.status.decided  # siblings unaffected
        assert runner.last_stats.failed == 1
        assert runner.last_stats.failures == {"ERROR": 1}

    def test_worker_hard_kill_becomes_error_outcome(self):
        tasks = make_tasks(3)
        runner = ParallelRunner(workers=2, fault_plan=FaultPlan({0: Fault("kill")}))
        outcomes = runner.run(tasks)
        assert outcomes[0].status is Status.ERROR
        assert "-9" in outcomes[0].error  # SIGKILL exit code is reported
        assert outcomes[1].status.decided and outcomes[2].status.decided

    def test_hang_is_timed_out(self):
        tasks = make_tasks(3)
        runner = ParallelRunner(
            workers=3, task_timeout=TIMEOUT,
            fault_plan=FaultPlan({2: Fault("hang")}),
        )
        outcomes = runner.run(tasks)
        assert outcomes[2].status is Status.TIMEOUT
        assert "budget" in outcomes[2].error
        assert outcomes[0].status.decided and outcomes[1].status.decided
        assert runner.last_stats.failures == {"TIMEOUT": 1}

    def test_injected_memout_is_classified(self):
        tasks = make_tasks(2)
        runner = ParallelRunner(workers=1, fault_plan=FaultPlan({0: Fault("memout")}))
        outcomes = runner.run(tasks)
        assert outcomes[0].status is Status.MEMOUT
        assert outcomes[1].status.decided

    def test_slow_fault_still_succeeds_within_budget(self):
        tasks = make_tasks(2)
        runner = ParallelRunner(
            workers=2, task_timeout=30.0,
            fault_plan=FaultPlan({0: Fault("slow", seconds=0.05)}),
        )
        outcomes = runner.run(tasks)
        assert all(o.status.decided for o in outcomes)

    def test_inline_exception_becomes_error_outcome(self, monkeypatch):
        # workers=1 without supervision options stays inline, but the
        # one-outcome-per-task contract must hold there too.
        import repro.parallel.runner as runner_module

        real = runner_module.execute_task
        tasks = make_tasks(3)

        def flaky(task):
            if task.tag == "t1":
                raise RuntimeError("inline boom")
            return real(task)

        monkeypatch.setattr(runner_module, "execute_task", flaky)
        outcomes = ParallelRunner(workers=1).run(tasks)
        assert [o.tag for o in outcomes] == ["t0", "t1", "t2"]
        assert outcomes[1].status is Status.ERROR
        assert outcomes[0].status.decided and outcomes[2].status.decided


class TestRetry:
    def test_transient_error_succeeds_on_retry(self):
        tasks = make_tasks(3)
        runner = ParallelRunner(
            workers=2, retries=2, retry_backoff=0.0,
            fault_plan=FaultPlan({1: Fault("raise", attempts=1)}),
        )
        outcomes = runner.run(tasks)
        assert all(o.status.decided for o in outcomes)
        assert outcomes[1].attempts == 2
        assert runner.last_stats.retried == 1
        assert runner.last_stats.failed == 0

    def test_permanent_error_exhausts_retries(self):
        tasks = make_tasks(2)
        runner = ParallelRunner(
            workers=1, retries=2, retry_backoff=0.0,
            fault_plan=FaultPlan({0: Fault("raise")}),
        )
        outcomes = runner.run(tasks)
        assert outcomes[0].status is Status.ERROR
        assert outcomes[0].attempts == 3  # 1 try + 2 retries
        assert outcomes[1].status.decided

    def test_timeouts_are_not_retried_by_default(self):
        tasks = make_tasks(1)
        runner = ParallelRunner(
            workers=1, retries=3, retry_backoff=0.0, task_timeout=TIMEOUT,
            fault_plan=FaultPlan({0: Fault("hang")}),
        )
        outcomes = runner.run(tasks)
        assert outcomes[0].status is Status.TIMEOUT
        assert outcomes[0].attempts == 1  # deterministic failure: one try

    def test_timeout_retry_opt_in(self):
        tasks = make_tasks(1)
        runner = ParallelRunner(
            workers=1, task_timeout=TIMEOUT,
            retry_policy=RetryPolicy(
                max_retries=1, backoff_seconds=0.0,
                retry_statuses=(Status.TIMEOUT,),
            ),
            fault_plan=FaultPlan({0: Fault("hang", attempts=1)}),
        )
        outcomes = runner.run(tasks)
        assert outcomes[0].status.decided
        assert outcomes[0].attempts == 2


class TestJournalResume:
    def test_resume_skips_finished_tasks(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        tasks = make_tasks(5)

        # "Interrupted" sweep: only the first three tasks ever finished.
        first = ParallelRunner(workers=2, journal=journal_path)
        first.run(tasks[:3])
        assert first.last_stats.executed == 3

        resumed = ParallelRunner(workers=2, journal=journal_path)
        outcomes = resumed.run(tasks)
        assert resumed.last_stats.journal_hits == 3
        assert resumed.last_stats.executed == 2
        assert [o.tag for o in outcomes] == [t.tag for t in tasks]
        assert [o.resumed for o in outcomes] == [True, True, True, False, False]

        # Journalled outcomes are byte-identical to fresh ones.
        fresh = ParallelRunner(workers=1).run(make_tasks(5))
        for a, b in zip(outcomes, fresh):
            assert a.status is b.status
            assert a.propagations == b.propagations

    def test_terminal_failures_are_journalled_not_rerun(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        tasks = make_tasks(3)
        first = ParallelRunner(
            workers=1, journal=journal_path,
            fault_plan=FaultPlan({1: Fault("raise")}),
        )
        first.run(tasks)

        # Resume without the fault plan: the recorded ERROR is terminal,
        # so nothing re-executes — finished means finished.
        resumed = ParallelRunner(workers=1, journal=journal_path)
        outcomes = resumed.run(make_tasks(3))
        assert resumed.last_stats.executed == 0
        assert resumed.last_stats.journal_hits == 3
        assert outcomes[1].status is Status.ERROR

    def test_torn_final_line_is_ignored(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        tasks = make_tasks(2)
        ParallelRunner(workers=1, journal=journal_path).run(tasks)
        with journal_path.open("a") as handle:
            handle.write('{"kind": "entry", "key": "abc", "outc')  # torn write

        journal = RunJournal(journal_path)
        assert journal.corrupt_lines == 1
        assert len(journal) == 2  # intact lines all survive

        resumed = ParallelRunner(workers=1, journal=journal)
        resumed.run(make_tasks(2))
        assert resumed.last_stats.journal_hits == 2

    def test_journal_tag_follows_current_task(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        tasks = make_tasks(2)
        ParallelRunner(workers=1, journal=journal_path).run(tasks)
        retagged = make_tasks(2)
        for task in retagged:
            task.tag = "re-" + task.tag
        outcomes = ParallelRunner(workers=1, journal=journal_path).run(retagged)
        assert [o.tag for o in outcomes] == ["re-t0", "re-t1"]


class TestCacheRobustness:
    def test_corrupt_entry_is_evicted_and_resolved(self, tmp_path):
        cache_dir = tmp_path / "cache"
        tasks = make_tasks(2)
        ParallelRunner(workers=1, cache_dir=cache_dir).run(tasks)

        cache = ResultCache(cache_dir)
        key = tasks[0].cache_key()
        cache.path_for(key).write_text("{ torn json")

        runner = ParallelRunner(workers=1, cache_dir=cache_dir)
        outcomes = runner.run(make_tasks(2))
        assert runner.cache.corrupt_evictions == 1
        assert runner.last_stats.executed == 1  # only the corrupt one
        assert runner.last_stats.cache_hits == 1
        assert all(o.status.decided for o in outcomes)
        # The re-solve repaired the entry on disk.
        assert ResultCache(cache_dir).get(key) is not None

    def test_stale_tmp_files_swept_on_startup(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "0" * 62, {"policy": "default"})
        # A killed writer's leftovers, in an existing shard directory.
        (tmp_path / "aa" / ("bb" + "0" * 62 + ".tmp.12345")).write_text("{par")
        assert len(cache) == 1  # tmp files are not entries

        reopened = ResultCache(tmp_path)
        assert reopened.tmp_swept == 1
        assert not list(tmp_path.glob("*/*.tmp.*"))
        assert len(reopened) == 1

    def test_clear_reports_entries_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "0" * 62, {"policy": "default"})
        cache.put("bb" + "0" * 62, {"policy": "default"})
        (tmp_path / "aa" / ("cc" + "0" * 62 + ".tmp.999")).write_text("x")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not list(tmp_path.glob("*/*.tmp.*"))

    def test_cache_hit_restores_current_tag(self, tmp_path):
        # Two tasks with identical cache keys but different caller tags:
        # the second must get its own tag back, not the first one's.
        cache_dir = tmp_path / "cache"
        config = default_labeling_config()
        cnf = random_ksat(30, 126, seed=77)
        first = SolveTask(cnf=cnf, config=config, max_conflicts=400, tag="alpha")
        second = SolveTask(cnf=cnf, config=config, max_conflicts=400, tag="beta")
        assert first.cache_key() == second.cache_key()

        ParallelRunner(workers=1, cache_dir=cache_dir).run([first])
        outcomes = ParallelRunner(workers=1, cache_dir=cache_dir).run([second])
        assert outcomes[0].cached
        assert outcomes[0].tag == "beta"  # not the stored "alpha"

        rerun = ParallelRunner(workers=1, cache_dir=cache_dir).run(
            [SolveTask(cnf=cnf, config=config, max_conflicts=400, tag="gamma")]
        )
        assert rerun[0].tag == "gamma" and rerun[0].cached


class TestLabelingSweepAcceptance:
    def test_faulty_sweep_completes_and_resumes(self, tmp_path):
        """The acceptance scenario: 1 hang, 1 crash, 1 transient error.

        The hang is timed out, the crash yields an ERROR outcome without
        aborting sibling tasks, the transient error succeeds on retry —
        and a re-run with the same journal re-solves only the tasks that
        failed terminally (here: none; everything is journalled).
        """
        cnfs = [random_ksat(30, 126, seed=40 + i) for i in range(5)]
        journal_path = tmp_path / "labels.jsonl"
        # Task indices are (instance, policy) pairs: 2i is instance i
        # under "default", 2i+1 under "frequency".
        plan = FaultPlan({
            0: Fault("hang"),                  # instance 0 / default
            3: Fault("kill"),                  # instance 1 / frequency
            4: Fault("raise", attempts=1),     # instance 2: transient
        })
        runner = ParallelRunner(
            workers=2, task_timeout=TIMEOUT, retries=1, retry_backoff=0.0,
            fault_plan=plan, journal=journal_path,
        )
        comparisons = label_instances(cnfs, max_conflicts=400, runner=runner)

        assert len(comparisons) == len(cnfs)  # nothing dropped
        stats = runner.last_stats
        assert stats.failures == {"TIMEOUT": 1, "ERROR": 1}
        # Two outcomes took more than one attempt: the transient error
        # (recovered) and the permanent kill (retried once, still ERROR).
        assert stats.retried == 2
        # Failed runs force the safe label 0; clean instances label
        # normally (their statuses are decided).
        assert comparisons[0].label == 0 and comparisons[1].label == 0
        assert comparisons[0].default_result_status is Status.TIMEOUT
        assert comparisons[1].frequency_result_status is Status.ERROR
        for comparison in comparisons[2:]:
            assert comparison.default_result_status.decided
            assert comparison.frequency_result_status.decided

        # Resume: every task is journalled (failures are terminal), so
        # the re-run does zero solver work and reproduces the labels.
        resumed_runner = ParallelRunner(workers=2, journal=journal_path)
        resumed = label_instances(cnfs, max_conflicts=400, runner=resumed_runner)
        assert resumed_runner.last_stats.executed == 0
        assert resumed_runner.last_stats.journal_hits == 2 * len(cnfs)
        assert [c.label for c in resumed] == [c.label for c in comparisons]

    def test_journal_file_is_plain_jsonl(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        ParallelRunner(workers=1, journal=journal_path).run(make_tasks(2))
        lines = journal_path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["kind"] == "entry"
            assert set(record) == {"kind", "key", "outcome"}
            assert record["outcome"]["status"] in (
                "SATISFIABLE", "UNSATISFIABLE", "UNKNOWN"
            )
