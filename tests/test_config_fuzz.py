"""Configuration fuzzing: any solver configuration must stay correct.

Sweeps random combinations of every solver knob (policy, decision
heuristic, restart mode, rephasing, reduce schedule, preprocessing)
against the brute-force oracle on small random formulas.  Interactions
between features are exactly where soundness bugs hide.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cnf import random_ksat
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.simplify import Preprocessor, solve_with_preprocessing
from repro.solver import Solver, SolverConfig, Status, brute_force_status

CONFIG_SPACE = st.fixed_dictionaries(
    {
        "restart_mode": st.sampled_from(["luby", "ema", "switching", "none"]),
        "decision_heuristic": st.sampled_from(["vsids", "vmtf"]),
        "rephase_interval": st.sampled_from([0, 2, 7]),
        "reduce_interval": st.sampled_from([1, 5, 50]),
        "reduce_fraction": st.sampled_from([0.25, 0.5, 1.0]),
        "keep_glue": st.sampled_from([0, 2]),
        "protect_used": st.booleans(),
        "initial_phase": st.booleans(),
        "luby_base": st.just(3),
    }
)


@st.composite
def formulas(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    n = rng.randint(2, 9)
    m = rng.randint(1, 36)
    return random_ksat(n, m, k=min(3, n), seed=seed)


@settings(max_examples=150, deadline=None)
@given(formulas(), CONFIG_SPACE, st.booleans())
def test_any_configuration_matches_oracle(cnf, config_kwargs, use_frequency):
    expected = brute_force_status(cnf)
    policy = FrequencyPolicy() if use_frequency else DefaultPolicy()
    config = SolverConfig(**config_kwargs)
    result = Solver(cnf, policy=policy, config=config).solve()
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)


@settings(max_examples=60, deadline=None)
@given(
    formulas(),
    st.fixed_dictionaries(
        {
            "enable_subsumption": st.booleans(),
            "enable_strengthening": st.booleans(),
            "enable_probing": st.booleans(),
            "enable_elimination": st.booleans(),
            "enable_vivification": st.booleans(),
            "enable_equivalences": st.booleans(),
            "max_rounds": st.sampled_from([1, 2, 4]),
        }
    ),
)
def test_any_preprocessor_configuration_matches_oracle(cnf, pre_kwargs):
    expected = brute_force_status(cnf)
    result = solve_with_preprocessing(cnf, preprocessor=Preprocessor(**pre_kwargs))
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
