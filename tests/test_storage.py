"""Tests for dataset persistence."""

import pytest

from repro.cnf import random_ksat
from repro.selection import (
    PolicyDataset,
    build_dataset,
    load_dataset,
    save_dataset,
)

from tests.conftest import make_labeled


class TestStorage:
    def test_round_trip_preserves_everything(self, tmp_path):
        dataset = PolicyDataset(
            train=[make_labeled(random_ksat(8, 20, seed=s), s % 2, year=2016 + s)
                   for s in range(3)],
            test=[make_labeled(random_ksat(8, 25, seed=9), 1, year=2022)],
        )
        path = tmp_path / "ds.json"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded.train) == 3 and len(loaded.test) == 1
        for a, b in zip(dataset.all_instances(), loaded.all_instances()):
            assert a.year == b.year
            assert a.family == b.family
            assert a.label == b.label
            assert a.comparison == b.comparison
            assert [c.literals for c in a.cnf.clauses] == [
                c.literals for c in b.cnf.clauses
            ]
            assert a.cnf.num_vars == b.cnf.num_vars

    def test_real_dataset_round_trip(self, tmp_path):
        dataset = build_dataset(instances_per_year=1, max_conflicts=300)
        path = tmp_path / "real.json"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.label_balance() == dataset.label_balance()

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "train": [], "test": []}')
        with pytest.raises(ValueError, match="format version"):
            load_dataset(path)
