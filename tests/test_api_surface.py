"""API-surface contract: every exported name exists and docstrings are real.

These tests keep the public API honest: any name listed in a package's
``__all__`` must be importable, and public modules/classes must carry
documentation — the "doc comments on every public item" deliverable.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.cnf",
    "repro.solver",
    "repro.policies",
    "repro.simplify",
    "repro.nn",
    "repro.graph",
    "repro.models",
    "repro.models.baselines",
    "repro.parallel",
    "repro.selection",
    "repro.bench",
    "repro.obs",
    "repro.fuzz",
]

MODULES = PACKAGES + [
    "repro.cli",
    "repro.cnf.formula",
    "repro.cnf.dimacs",
    "repro.cnf.generators",
    "repro.cnf.features",
    "repro.cnf.structure",
    "repro.cnf.transforms",
    "repro.cnf.encodings",
    "repro.solver.types",
    "repro.solver.solver",
    "repro.solver.propagate",
    "repro.solver.analyze",
    "repro.solver.decide",
    "repro.solver.vmtf",
    "repro.solver.restart",
    "repro.solver.reduce",
    "repro.solver.proof",
    "repro.solver.drat",
    "repro.solver.walksat",
    "repro.solver.reference",
    "repro.policies.score",
    "repro.policies.base",
    "repro.parallel.cache",
    "repro.parallel.journal",
    "repro.parallel.progress",
    "repro.parallel.runner",
    "repro.parallel.supervisor",
    "repro.simplify.passes",
    "repro.simplify.elimination",
    "repro.simplify.equivalence",
    "repro.simplify.vivify",
    "repro.simplify.blocked",
    "repro.simplify.xor_gauss",
    "repro.simplify.pipeline",
    "repro.nn.tensor",
    "repro.nn.layers",
    "repro.nn.optim",
    "repro.nn.loss",
    "repro.nn.schedulers",
    "repro.nn.serialization",
    "repro.graph.bipartite",
    "repro.graph.lcg",
    "repro.graph.batching",
    "repro.models.mpnn",
    "repro.models.linear_attention",
    "repro.models.hgt",
    "repro.models.neuroselect",
    "repro.selection.labeling",
    "repro.selection.dataset",
    "repro.selection.trainer",
    "repro.selection.metrics",
    "repro.selection.selector",
    "repro.selection.validation",
    "repro.selection.storage",
    "repro.bench.calibration",
    "repro.bench.runner",
    "repro.bench.tables",
    "repro.bench.experiments",
    "repro.bench.reporting",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.obs.observer",
    "repro.obs.manifest",
    "repro.obs.report",
    "repro.fuzz.oracles",
    "repro.fuzz.campaign",
    "repro.fuzz.shrink",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{module_name} lacks a real module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their source
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
