"""Tests for XOR recovery and GF(2) Gaussian elimination."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, parity_chain
from repro.cnf.generators import _xor_clauses
from repro.simplify import Preprocessor, solve_with_preprocessing
from repro.simplify.xor_gauss import (
    GF2System,
    XorConstraint,
    _expected_group,
    gaussian_eliminate,
    recover_xors,
)
from repro.solver import Solver, Status, brute_force_status


def xor_cnf_clauses(variables, parity):
    return [frozenset(c) for c in _xor_clauses(list(variables), parity)]


class TestRecovery:
    def test_group_matches_generator_encoding(self):
        for arity in (2, 3, 4):
            for rhs in (0, 1):
                variables = tuple(range(1, arity + 1))
                group = _expected_group(variables, rhs)
                generated = set(xor_cnf_clauses(variables, rhs))
                assert group == generated

    def test_recovers_single_xor(self):
        clauses = xor_cnf_clauses((1, 2, 3), 1)
        xors = recover_xors(clauses)
        assert xors == [XorConstraint(variables=(1, 2, 3), rhs=1)]

    def test_incomplete_group_not_recovered(self):
        clauses = xor_cnf_clauses((1, 2, 3), 1)[:-1]
        assert recover_xors(clauses) == []

    def test_arity_limit(self):
        clauses = xor_cnf_clauses((1, 2, 3, 4, 5, 6), 0)
        assert recover_xors(clauses, max_arity=5) == []
        assert recover_xors(clauses, max_arity=6) != []

    def test_mixed_with_ordinary_clauses(self):
        clauses = xor_cnf_clauses((1, 2), 1) + [frozenset([3, 4, 5])]
        xors = recover_xors(clauses)
        assert len(xors) == 1
        assert xors[0].variables == (1, 2)


class TestGF2System:
    def test_inconsistent_system(self):
        system = GF2System([
            XorConstraint((1, 2), 0),
            XorConstraint((1, 2), 1),
        ])
        system.eliminate()
        assert system.inconsistent

    def test_unit_derivation(self):
        # x1 ^ x2 = 1, x2 = 1  =>  x1 = 0.
        system = GF2System([
            XorConstraint((1, 2), 1),
            XorConstraint((2,), 1),
        ])
        system.eliminate()
        assert not system.inconsistent
        assert set(system.units()) == {-1, 2}

    def test_equivalence_derivation(self):
        # x1 ^ x2 ^ x3 = 0, x3 = 0  =>  x1 = x2.
        system = GF2System([
            XorConstraint((1, 2, 3), 0),
            XorConstraint((3,), 0),
        ])
        system.eliminate()
        assert (1, 2) in system.equivalences()

    def test_chain_collapse(self):
        # x1^x2=1, x2^x3=1, x3^x1=1 is odd-cycle inconsistent.
        system = GF2System([
            XorConstraint((1, 2), 1),
            XorConstraint((2, 3), 1),
            XorConstraint((1, 3), 1),
        ])
        system.eliminate()
        assert system.inconsistent

    def test_invalid_constraint_rejected(self):
        with pytest.raises(ValueError):
            XorConstraint((2, 1), 0)  # unsorted
        with pytest.raises(ValueError):
            XorConstraint((1,), 2)  # bad rhs


class TestGaussianEliminate:
    def test_parity_contradiction_detected_instantly(self):
        cnf = parity_chain(24, seed=1, contradiction=True)
        clauses = [frozenset(c.literals) for c in cnf.clauses]
        _, _, unsat = gaussian_eliminate(clauses)
        assert unsat

    def test_consistent_parity_not_flagged(self):
        cnf = parity_chain(24, seed=1, contradiction=False)
        clauses = [frozenset(c.literals) for c in cnf.clauses]
        _, _, unsat = gaussian_eliminate(clauses)
        assert not unsat

    def test_known_units_not_reported_again(self):
        clauses = xor_cnf_clauses((1, 2), 1) + [frozenset([2])]
        units, _, unsat = gaussian_eliminate(clauses)
        assert not unsat
        assert units == [-1]

    def test_no_xors_is_noop(self):
        units, equivs, unsat = gaussian_eliminate([frozenset([1, 2, 3])])
        assert units == [] and equivs == [] and not unsat


class TestPipelineIntegration:
    def test_parity_contradiction_decided_without_search(self):
        cnf = parity_chain(30, seed=2, contradiction=True)
        result = Preprocessor().preprocess(cnf)
        assert result.status is Status.UNSATISFIABLE

    def test_flag_disables(self):
        cnf = parity_chain(8, seed=2, contradiction=True)
        result = Preprocessor(
            enable_xor_gauss=False,
            enable_elimination=False,
            enable_strengthening=False,
            enable_probing=False,
            enable_subsumption=False,
            enable_equivalences=False,
        ).preprocess(cnf)
        assert result.status is Status.UNKNOWN  # nothing else decides it

    def test_stats_counted(self):
        # XOR(1,2,3)=1 combined with XOR(1,2)=0 forces x3=1 — a unit only
        # Gaussian elimination can see (no clause-level propagation fires).
        clauses = [list(c) for c in xor_cnf_clauses((1, 2, 3), 1)]
        clauses += [list(c) for c in xor_cnf_clauses((1, 2), 0)]
        clauses.append([3, 4, 5])
        cnf = CNF(clauses)
        result = Preprocessor(
            enable_elimination=False, enable_equivalences=False
        ).preprocess(cnf)
        assert result.stats.xor_units >= 1
        assert result.fixed.get(3) is True

    def test_gauss_speedup_on_parity(self):
        """The pass decides in preprocessing what CDCL needs thousands of
        conflicts for."""
        cnf = parity_chain(20, seed=4, contradiction=True)
        with_gauss = solve_with_preprocessing(cnf)
        assert with_gauss.status is Status.UNSATISFIABLE
        assert with_gauss.stats.conflicts == 0  # decided before search


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=500),
)
def test_property_gauss_preserves_satisfiability(num_vars, seed):
    """Random small XOR systems + noise clauses: pipeline matches oracle."""
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(rng.randint(1, 3)):
        arity = rng.randint(2, min(3, num_vars))
        variables = sorted(rng.sample(range(1, num_vars + 1), arity))
        clauses.extend(list(c) for c in xor_cnf_clauses(tuple(variables), rng.randint(0, 1)))
    for _ in range(rng.randint(0, 4)):
        v = rng.randint(1, num_vars)
        clauses.append([v if rng.random() < 0.5 else -v])
    cnf = CNF(clauses, num_vars=num_vars)
    expected = brute_force_status(cnf)
    result = solve_with_preprocessing(cnf)
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
