"""Tests for labeling, datasets, metrics, training, and the selector."""

import pytest

from repro.cnf import CNF, random_ksat
from repro.models import NeuroSelect
from repro.selection import (
    ClassificationMetrics,
    NeuroSelectSolver,
    PolicyDataset,
    Trainer,
    build_dataset,
    classification_metrics,
    compare_policies,
    dataset_statistics,
    run_policy,
)
from repro.selection.dataset import LabeledInstance, _instance_pool
from repro.selection.labeling import REDUCTION_THRESHOLD, default_labeling_config
from repro.solver import Status

from tests.conftest import make_labeled


class TestLabeling:
    def test_run_policy_names(self, medium_sat_cnf):
        d = run_policy(medium_sat_cnf, "default", max_conflicts=2000)
        f = run_policy(medium_sat_cnf, "frequency", max_conflicts=2000)
        assert d.policy_name == "default"
        assert f.policy_name == "frequency"

    def test_compare_policies_fields(self, medium_sat_cnf):
        comparison = compare_policies(medium_sat_cnf, max_conflicts=2000)
        assert comparison.default_propagations > 0
        assert comparison.frequency_propagations > 0
        assert comparison.label in (0, 1)

    def test_label_follows_threshold(self):
        """Label 1 iff frequency policy saves >= 2% propagations."""
        from repro.selection.labeling import PolicyComparison

        base = dict(
            default_result_status=Status.SATISFIABLE,
            frequency_result_status=Status.SATISFIABLE,
        )
        just_under = PolicyComparison(
            default_propagations=1000, frequency_propagations=981, label=0, **base
        )
        assert just_under.reduction < REDUCTION_THRESHOLD
        at_threshold = PolicyComparison(
            default_propagations=1000, frequency_propagations=980, label=1, **base
        )
        assert at_threshold.reduction >= REDUCTION_THRESHOLD

    def test_label_zero_when_both_unknown(self):
        # Hard instance, tiny budget: both runs time out -> safe label 0.
        cnf = random_ksat(150, 645, seed=0)
        comparison = compare_policies(cnf, max_conflicts=5)
        assert comparison.default_result_status is Status.UNKNOWN
        assert comparison.frequency_result_status is Status.UNKNOWN
        assert comparison.label == 0

    def test_deterministic(self, medium_sat_cnf):
        a = compare_policies(medium_sat_cnf, max_conflicts=2000)
        b = compare_policies(medium_sat_cnf, max_conflicts=2000)
        assert a == b

    def test_labeling_config_shape(self):
        config = default_labeling_config()
        assert config.reduce_interval < 300  # scaled down from Kissat


class TestDataset:
    def test_instance_pool_deterministic(self):
        a = _instance_pool(2020, 5, 1.0)
        b = _instance_pool(2020, 5, 1.0)
        assert [f for f, _ in a] == [f for f, _ in b]
        assert all(
            [c.literals for c in x.clauses] == [c.literals for c in y.clauses]
            for (_, x), (_, y) in zip(a, b)
        )

    def test_years_differ(self):
        a = _instance_pool(2016, 5, 1.0)
        b = _instance_pool(2017, 5, 1.0)
        texts_a = [tuple(c.literals for c in cnf.clauses) for _, cnf in a]
        texts_b = [tuple(c.literals for c in cnf.clauses) for _, cnf in b]
        assert texts_a != texts_b

    def test_build_dataset_small(self):
        ds = build_dataset(instances_per_year=2, max_conflicts=500)
        assert len(ds.train) == 12  # 6 train years x 2
        assert len(ds.test) == 2
        assert all(inst.label in (0, 1) for inst in ds.all_instances())
        assert all(inst.year != 2022 for inst in ds.train)
        assert all(inst.year == 2022 for inst in ds.test)

    def test_node_filter_excludes_large(self):
        ds = build_dataset(instances_per_year=2, max_conflicts=100, max_nodes=10)
        assert len(ds.all_instances()) == 0

    def test_statistics_rows(self):
        ds = PolicyDataset(
            train=[make_labeled(CNF([[1, 2]]), 0, year=2016)],
            test=[make_labeled(CNF([[1], [2], [3]]), 1, year=2022)],
        )
        rows = dataset_statistics(ds)
        assert len(rows) == 2
        assert rows[0].split == "Training" and rows[0].num_cnfs == 1
        assert rows[1].split == "Test" and rows[1].mean_clauses == 3

    def test_label_balance(self):
        ds = PolicyDataset(
            train=[make_labeled(CNF([[1]]), l) for l in (0, 1, 1, 1)],
            test=[make_labeled(CNF([[1]]), 0)],
        )
        assert ds.label_balance() == {"train": 0.75, "test": 0.0}


class TestMetrics:
    def test_perfect(self):
        m = classification_metrics([1, 0, 1], [1, 0, 1])
        assert m.accuracy == 1.0 and m.f1 == 1.0

    def test_confusion_counts(self):
        m = classification_metrics([1, 1, 0, 0], [1, 0, 1, 0])
        assert (m.true_positives, m.false_positives, m.false_negatives, m.true_negatives) == (1, 1, 1, 1)
        assert m.precision == 0.5 and m.recall == 0.5 and m.accuracy == 0.5

    def test_zero_division_guards(self):
        m = classification_metrics([0, 0], [0, 0])
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0
        assert m.accuracy == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            classification_metrics([1], [1, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            classification_metrics([2], [1])

    def test_as_row_percentages(self):
        m = classification_metrics([1, 0], [1, 1])
        row = m.as_row()
        assert row["accuracy"] == pytest.approx(50.0)

    def test_f1_harmonic_mean(self):
        m = ClassificationMetrics(
            true_positives=2, false_positives=1, true_negatives=0, false_negatives=2
        )
        p, r = 2 / 3, 1 / 2
        assert m.f1 == pytest.approx(2 * p * r / (p + r))


class TestTrainer:
    @pytest.fixture
    def toy_instances(self):
        # Labels correlated with a visible feature (clause/var ratio).
        sparse = [random_ksat(12, 24, seed=s) for s in range(4)]
        dense = [random_ksat(12, 60, seed=s) for s in range(4)]
        return [make_labeled(c, 0) for c in sparse] + [
            make_labeled(c, 1) for c in dense
        ]

    def test_fit_reduces_loss(self, toy_instances):
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, learning_rate=3e-3, epochs=25)
        history = trainer.fit(toy_instances)
        assert len(history.losses) == 25
        assert history.final_loss < history.losses[0]

    def test_fit_learns_separable_labels(self, toy_instances):
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, learning_rate=5e-3, epochs=60)
        trainer.fit(toy_instances)
        metrics = trainer.evaluate(toy_instances)
        assert metrics.accuracy >= 0.9

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            Trainer(NeuroSelect(hidden_dim=8)).fit([])

    def test_class_weights_balance(self):
        trainer = Trainer(NeuroSelect(hidden_dim=8), class_balance=True)
        weights = trainer._weights([1, 0, 0, 0])
        assert weights[0] == pytest.approx(2.0)
        assert weights[1] == pytest.approx(2 / 3)
        # Mean stays 1 so the effective lr is unchanged.
        assert sum(weights) / len(weights) == pytest.approx(1.0)

    def test_single_class_gets_uniform_weights(self):
        trainer = Trainer(NeuroSelect(hidden_dim=8))
        assert trainer._weights([0, 0]) == [1.0, 1.0]


class TestSelector:
    def test_selects_and_solves(self, medium_sat_cnf):
        model = NeuroSelect(hidden_dim=8, seed=0)
        selector = NeuroSelectSolver(model)
        outcome = selector.solve(medium_sat_cnf, max_conflicts=5000)
        assert outcome.result.status is Status.SATISFIABLE
        assert outcome.policy_name in ("default", "frequency")
        assert outcome.predicted_label in (0, 1)
        assert outcome.inference_seconds >= 0.0
        assert outcome.used_model

    def test_label_policy_consistency(self, medium_sat_cnf):
        model = NeuroSelect(hidden_dim=8, seed=0)
        outcome = NeuroSelectSolver(model).solve(medium_sat_cnf, max_conflicts=100)
        expected = "frequency" if outcome.predicted_label == 1 else "default"
        assert outcome.policy_name == expected

    def test_node_cap_falls_back_to_default(self, medium_sat_cnf):
        model = NeuroSelect(hidden_dim=8, seed=0)
        selector = NeuroSelectSolver(model, max_nodes=3)
        outcome = selector.solve(medium_sat_cnf, max_conflicts=100)
        assert not outcome.used_model
        assert outcome.policy_name == "default"
        assert outcome.inference_seconds == 0.0

    def test_threshold_extremes_force_policy(self, medium_sat_cnf):
        model = NeuroSelect(hidden_dim=8, seed=0)
        always_default = NeuroSelectSolver(model, threshold=1.1)
        always_frequency = NeuroSelectSolver(model, threshold=-0.1)
        assert always_default.solve(medium_sat_cnf, max_conflicts=10).policy_name == "default"
        assert always_frequency.solve(medium_sat_cnf, max_conflicts=10).policy_name == "frequency"


class TestBatchedTraining:
    @pytest.fixture
    def toy(self):
        sparse = [make_labeled(random_ksat(12, 24, seed=s), 0) for s in range(3)]
        dense = [make_labeled(random_ksat(12, 60, seed=s), 1) for s in range(3)]
        return sparse + dense

    def test_batched_fit_learns(self, toy):
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, learning_rate=5e-3, epochs=30, batch_size=3)
        history = trainer.fit(toy)
        assert history.final_loss < history.losses[0]
        assert trainer.evaluate(toy).accuracy >= 0.8

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            Trainer(NeuroSelect(hidden_dim=8), batch_size=0)

    def test_model_without_batched_forward_rejected(self):
        from repro.models import NeuroSATClassifier

        with pytest.raises(ValueError, match="batched forward"):
            Trainer(NeuroSATClassifier(hidden_dim=8), batch_size=4)

    def test_last_partial_batch_handled(self, toy):
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, learning_rate=5e-3, epochs=2, batch_size=4)
        history = trainer.fit(toy)  # 6 instances -> batches of 4 and 2
        assert len(history.losses) == 2


class TestAugmentDataset:
    def test_copies_multiply_size(self):
        from repro.selection import augment_dataset

        base = [make_labeled(random_ksat(8, 20, seed=s), s % 2) for s in range(3)]
        augmented = augment_dataset(base, copies=2, base_seed=1)
        assert len(augmented) == 9
        # Originals come first, untouched.
        assert augmented[:3] == base

    def test_labels_and_metadata_inherited(self):
        from repro.selection import augment_dataset

        base = [make_labeled(random_ksat(8, 20, seed=0), 1, year=2019, family="x")]
        aug = augment_dataset(base, copies=1)[1]
        assert aug.label == 1 and aug.year == 2019 and aug.family == "x"
        # The formula itself differs (renamed/flipped/shuffled) ...
        assert [c.literals for c in aug.cnf.clauses] != [
            c.literals for c in base[0].cnf.clauses
        ]
        # ... but is structurally identical in size.
        assert aug.cnf.num_vars == base[0].cnf.num_vars
        assert aug.cnf.num_clauses == base[0].cnf.num_clauses

    def test_zero_copies_identity(self):
        from repro.selection import augment_dataset

        base = [make_labeled(random_ksat(8, 20, seed=0), 0)]
        assert augment_dataset(base, copies=0) == base

    def test_negative_copies_rejected(self):
        from repro.selection import augment_dataset

        with pytest.raises(ValueError):
            augment_dataset([], copies=-1)

    def test_deterministic(self):
        from repro.selection import augment_dataset

        base = [make_labeled(random_ksat(8, 20, seed=0), 0)]
        a = augment_dataset(base, copies=1, base_seed=5)[1]
        b = augment_dataset(base, copies=1, base_seed=5)[1]
        assert [c.literals for c in a.cnf.clauses] == [
            c.literals for c in b.cnf.clauses
        ]
