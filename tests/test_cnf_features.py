"""Tests for static formula feature extraction."""

import pytest

from repro.cnf import CNF, extract_features, random_ksat
from repro.cnf.features import _gini


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_fully_concentrated_approaches_one(self):
        value = _gini([0] * 99 + [100])
        assert value > 0.9

    def test_empty_and_zero(self):
        assert _gini([]) == 0.0
        assert _gini([0, 0]) == 0.0

    def test_monotone_in_skew(self):
        assert _gini([1, 1, 1, 9]) > _gini([2, 2, 4, 4])


class TestExtractFeatures:
    def test_basic_counts(self):
        cnf = CNF([[1, 2, 3], [-1, -2], [2]])
        f = extract_features(cnf)
        assert f.num_vars == 3
        assert f.num_clauses == 3
        assert f.num_literals == 6
        assert f.mean_clause_size == pytest.approx(2.0)
        assert f.max_clause_size == 3
        assert f.min_clause_size == 1
        assert f.binary_fraction == pytest.approx(1 / 3)
        assert f.ternary_fraction == pytest.approx(1 / 3)

    def test_horn_fraction(self):
        # Horn: at most one positive literal per clause.
        cnf = CNF([[-1, -2, 3], [1, 2], [-1, -2]])
        f = extract_features(cnf)
        assert f.horn_fraction == pytest.approx(2 / 3)

    def test_positive_literal_fraction(self):
        cnf = CNF([[1, -2], [3, 4]])
        f = extract_features(cnf)
        assert f.positive_literal_fraction == pytest.approx(3 / 4)

    def test_occurrence_stats(self):
        cnf = CNF([[1, 2], [1, 3], [1, -2]])
        f = extract_features(cnf)
        assert f.max_var_occurrence == 3
        assert f.mean_var_occurrence == pytest.approx(6 / 3)

    def test_empty_formula_total(self):
        f = extract_features(CNF())
        assert f.num_vars == 0
        assert f.clause_var_ratio == 0.0
        assert f.mean_clause_size == 0.0

    def test_vector_shape_fixed(self):
        f1 = extract_features(CNF([[1, 2]]))
        f2 = extract_features(random_ksat(20, 60, seed=0))
        assert len(f1.as_vector()) == len(f2.as_vector()) == 14

    def test_dict_round_trip(self):
        f = extract_features(CNF([[1, 2]]))
        d = f.to_dict()
        assert d["num_vars"] == 1 or d["num_vars"] == 2
        assert set(d) == {
            "num_vars", "num_clauses", "num_literals", "clause_var_ratio",
            "mean_clause_size", "max_clause_size", "min_clause_size",
            "binary_fraction", "ternary_fraction", "horn_fraction",
            "positive_literal_fraction", "mean_var_occurrence",
            "max_var_occurrence", "var_occurrence_gini",
        }
