"""Tests for Tseitin circuit encoding and miter construction."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf.encodings import Circuit, miter, ripple_carry_adder
from repro.solver import Solver, Status


def solve(cnf):
    return Solver(cnf).solve()


class TestCircuitConstruction:
    def test_inputs_are_stable(self):
        c = Circuit()
        assert c.input("a") == c.input("a")
        assert c.input("a") != c.input("b")

    def test_undefined_signal_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.and_(1, 99)
        with pytest.raises(ValueError):
            c.not_(5)

    def test_gate_arity_checks(self):
        c = Circuit()
        a = c.input("a")
        with pytest.raises(ValueError):
            c.and_(a)
        with pytest.raises(ValueError):
            c.or_(a)

    def test_output_must_be_set(self):
        c = Circuit()
        c.input("a")
        with pytest.raises(ValueError):
            _ = c.output


class TestEvaluation:
    def test_gates_match_python_semantics(self):
        c = Circuit()
        a, b, s = c.input("a"), c.input("b"), c.input("s")
        gates = {
            "and": c.and_(a, b),
            "or": c.or_(a, b),
            "xor": c.xor(a, b),
            "not": c.not_(a),
            "ite": c.ite(s, a, b),
        }
        for va, vb, vs in itertools.product([False, True], repeat=3):
            env = {"a": va, "b": vb, "s": vs}
            expected = {
                "and": va and vb,
                "or": va or vb,
                "xor": va != vb,
                "not": not va,
                "ite": va if vs else vb,
            }
            for kind, lit in gates.items():
                c.set_output(lit)
                assert c.evaluate(env) == expected[kind], kind

    def test_missing_input_rejected(self):
        c = Circuit()
        a = c.input("a")
        c.set_output(a)
        with pytest.raises(ValueError):
            c.evaluate({})


class TestTseitinEncoding:
    def test_sat_iff_output_activatable(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.set_output(c.and_(a, b))
        result = solve(c.to_cnf())
        assert result.status is Status.SATISFIABLE
        # The model must actually drive the circuit to true.
        assignment = {"a": result.model[a], "b": result.model[b]}
        assert c.evaluate(assignment) is True

    def test_contradictory_circuit_unsat(self):
        c = Circuit()
        a = c.input("a")
        c.set_output(c.and_(a, c.not_(a)))
        assert solve(c.to_cnf()).status is Status.UNSATISFIABLE

    def test_without_output_assertion(self):
        c = Circuit()
        a = c.input("a")
        c.set_output(c.and_(a, c.not_(a)))
        # Pure definition clauses are always satisfiable.
        assert solve(c.to_cnf(assert_output=False)).status is Status.SATISFIABLE

    def test_encoding_agrees_with_simulation(self):
        """For every input assignment: CNF + pinned inputs SAT <=> simulate."""
        c = Circuit()
        a, b, s = c.input("a"), c.input("b"), c.input("s")
        c.set_output(c.xor(c.ite(s, a, b), c.and_(a, b)))
        cnf = c.to_cnf()
        for va, vb, vs in itertools.product([False, True], repeat=3):
            assumptions = [
                a if va else -a,
                b if vb else -b,
                s if vs else -s,
            ]
            result = Solver(cnf).solve(assumptions=assumptions)
            simulated = c.evaluate({"a": va, "b": vb, "s": vs})
            assert (result.status is Status.SATISFIABLE) == simulated


class TestMiter:
    def build_xor_two_ways(self):
        # XOR via the gate, and via (a|b) & ~(a&b).
        direct = Circuit()
        a, b = direct.input("a"), direct.input("b")
        direct.set_output(direct.xor(a, b))

        composed = Circuit()
        x, y = composed.input("a"), composed.input("b")
        composed.set_output(
            composed.and_(composed.or_(x, y), composed.not_(composed.and_(x, y)))
        )
        return direct, composed

    def test_equivalent_circuits_give_unsat_miter(self):
        direct, composed = self.build_xor_two_ways()
        assert solve(miter(direct, composed)).status is Status.UNSATISFIABLE

    def test_inequivalent_circuits_give_sat_miter(self):
        direct, _ = self.build_xor_two_ways()
        other = Circuit()
        a, b = other.input("a"), other.input("b")
        other.set_output(other.or_(a, b))  # OR != XOR at a=b=1
        result = solve(miter(direct, other))
        assert result.status is Status.SATISFIABLE

    def test_mismatched_inputs_rejected(self):
        c1 = Circuit()
        c1.set_output(c1.input("a"))
        c2 = Circuit()
        c2.set_output(c2.input("z"))
        with pytest.raises(ValueError):
            miter(c1, c2)

    def test_adder_self_equivalence(self):
        a1 = ripple_carry_adder(3)
        a2 = ripple_carry_adder(3)
        assert solve(miter(a1, a2)).status is Status.UNSATISFIABLE

    def test_adder_width_mismatch_detected(self):
        with pytest.raises(ValueError):
            miter(ripple_carry_adder(3), ripple_carry_adder(4))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=255))
def test_property_random_circuit_encoding_matches_simulation(seed):
    """Random 3-input circuits: SAT-with-pinned-inputs == simulation."""
    import random

    rng = random.Random(seed)
    c = Circuit()
    names = ["a", "b", "d"]
    signals = [c.input(n) for n in names]
    for _ in range(rng.randint(1, 6)):
        op = rng.choice(["and", "or", "xor", "not", "ite"])
        picks = [rng.choice(signals) for _ in range(3)]
        if op == "and":
            signals.append(c.and_(picks[0], picks[1]))
        elif op == "or":
            signals.append(c.or_(picks[0], picks[1]))
        elif op == "xor":
            signals.append(c.xor(picks[0], picks[1]))
        elif op == "not":
            signals.append(c.not_(picks[0]))
        else:
            signals.append(c.ite(*picks))
    c.set_output(signals[-1])
    cnf = c.to_cnf()
    inputs = c.inputs
    for values in ((False, False, True), (True, True, False)):
        env = dict(zip(names, values))
        assumptions = [
            inputs[n] if env[n] else -inputs[n] for n in names
        ]
        result = Solver(cnf).solve(assumptions=assumptions)
        assert (result.status is Status.SATISFIABLE) == c.evaluate(env)
