"""Property-based tests for feature extraction and DIMACS round-trips."""

from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, extract_features, parse_dimacs, to_dimacs
from repro.cnf.transforms import rename_variables, shuffle_clauses


@st.composite
def cnfs(draw, max_vars=10, max_clauses=20):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(st.lists(literal, min_size=1, max_size=5), max_size=max_clauses)
    )
    return CNF(clauses, num_vars=num_vars)


@settings(max_examples=100, deadline=None)
@given(cnfs())
def test_dimacs_round_trip_exact(cnf):
    reparsed = parse_dimacs(to_dimacs(cnf), strict=True)
    assert reparsed.num_vars == cnf.num_vars
    assert [c.literals for c in reparsed.clauses] == [
        c.literals for c in cnf.clauses
    ]


@settings(max_examples=80, deadline=None)
@given(cnfs())
def test_feature_invariants(cnf):
    f = extract_features(cnf)
    assert f.num_literals == sum(len(c) for c in cnf.clauses)
    assert 0.0 <= f.binary_fraction <= 1.0
    assert 0.0 <= f.ternary_fraction <= 1.0
    assert 0.0 <= f.horn_fraction <= 1.0
    assert 0.0 <= f.positive_literal_fraction <= 1.0
    assert 0.0 <= f.var_occurrence_gini <= 1.0
    assert f.min_clause_size <= f.mean_clause_size <= f.max_clause_size or (
        f.num_clauses == 0
    )


@settings(max_examples=60, deadline=None)
@given(cnfs(), st.integers(min_value=0, max_value=999))
def test_features_invariant_under_clause_shuffle(cnf, seed):
    """Clause order cannot change any feature."""
    shuffled = shuffle_clauses(cnf, seed=seed)
    assert extract_features(shuffled) == extract_features(cnf)


@settings(max_examples=60, deadline=None)
@given(cnfs(), st.integers(min_value=0, max_value=999))
def test_size_features_invariant_under_renaming(cnf, seed):
    """Renaming permutes occurrence counts; aggregate stats are unchanged."""
    renamed = rename_variables(cnf, seed=seed)
    original = extract_features(cnf)
    transformed = extract_features(renamed)
    assert transformed.num_vars == original.num_vars
    assert transformed.num_clauses == original.num_clauses
    assert transformed.num_literals == original.num_literals
    assert transformed.mean_clause_size == original.mean_clause_size
    assert transformed.max_var_occurrence == original.max_var_occurrence
    assert abs(transformed.var_occurrence_gini - original.var_occurrence_gini) < 1e-12
