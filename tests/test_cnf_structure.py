"""Tests for VIG-based structural analysis."""

import pytest

from repro.cnf import CNF, community_sat, random_ksat
from repro.cnf.structure import (
    community_labels,
    structural_features,
    variable_incidence_graph,
)


class TestVariableIncidenceGraph:
    def test_nodes_cover_all_variables(self):
        cnf = CNF([[1, 2]], num_vars=4)
        graph = variable_incidence_graph(cnf)
        assert set(graph.nodes) == {1, 2, 3, 4}

    def test_clause_creates_pairwise_edges(self):
        cnf = CNF([[1, 2, 3]])
        graph = variable_incidence_graph(cnf)
        assert graph.number_of_edges() == 3

    def test_polarity_irrelevant(self):
        a = variable_incidence_graph(CNF([[1, 2]]))
        b = variable_incidence_graph(CNF([[-1, -2]]))
        assert set(a.edges) == set(b.edges)

    def test_weights_normalize_clause_size(self):
        cnf = CNF([[1, 2], [3, 4, 5]])
        graph = variable_incidence_graph(cnf)
        assert graph[1][2]["weight"] == pytest.approx(1.0)
        assert graph[3][4]["weight"] == pytest.approx(1.0 / 3.0)

    def test_repeated_cooccurrence_accumulates(self):
        cnf = CNF([[1, 2], [1, 2, 3]])
        graph = variable_incidence_graph(cnf)
        assert graph[1][2]["weight"] == pytest.approx(1.0 + 1.0 / 3.0)

    def test_long_clauses_skipped(self):
        cnf = CNF([list(range(1, 15))])
        graph = variable_incidence_graph(cnf, max_clause_size=10)
        assert graph.number_of_edges() == 0


class TestStructuralFeatures:
    def test_empty_formula(self):
        f = structural_features(CNF())
        assert f.num_vig_nodes == 0
        assert f.modularity == 0.0

    def test_counts(self):
        f = structural_features(CNF([[1, 2], [2, 3]]))
        assert f.num_vig_nodes == 3
        assert f.num_vig_edges == 2
        assert f.mean_degree == pytest.approx(4 / 3)

    def test_community_structure_detected(self):
        """The community generator must yield higher modularity than
        uniform random formulas of the same size."""
        modular = community_sat(4, 15, 60, inter_clause_fraction=0.02, seed=1)
        uniform = random_ksat(60, 240, seed=1)
        f_mod = structural_features(modular)
        f_uni = structural_features(uniform)
        assert f_mod.modularity > f_uni.modularity + 0.2

    def test_disconnected_components(self):
        cnf = CNF([[1, 2], [3, 4]])
        f = structural_features(cnf)
        assert f.largest_component_fraction == pytest.approx(0.5)

    def test_to_dict_keys(self):
        d = structural_features(CNF([[1, 2]])).to_dict()
        assert "modularity" in d and "clustering_coefficient" in d


class TestCommunityLabels:
    def test_labels_cover_variables(self):
        cnf = community_sat(3, 10, 40, inter_clause_fraction=0.0, seed=0)
        labels = community_labels(cnf)
        assert len(labels) == cnf.num_vars + 1

    def test_disjoint_communities_separated(self):
        # Two completely disconnected variable groups.
        cnf = CNF([[1, 2], [1, 3], [2, 3], [4, 5], [4, 6], [5, 6]])
        labels = community_labels(cnf)
        assert labels[1] == labels[2] == labels[3]
        assert labels[4] == labels[5] == labels[6]
        assert labels[1] != labels[4]

    def test_edgeless_formula(self):
        assert community_labels(CNF([[1]])) == [0, 0]
