"""Tests for EXPERIMENTS.md report generation."""

from pathlib import Path

from repro.bench.reporting import (
    PAPER_REFERENCE,
    SECTION_ORDER,
    build_experiments_md,
    collect_sections,
)


class TestReporting:
    def test_every_section_has_a_reference(self):
        assert set(SECTION_ORDER) == set(PAPER_REFERENCE)

    def test_collect_handles_missing_files(self, tmp_path):
        sections = collect_sections(tmp_path)
        assert all(s.measured is None for s in sections)
        assert "no result file found" in sections[0].render()

    def test_collect_reads_existing(self, tmp_path):
        (tmp_path / "table3_runtime.txt").write_text("measured rows\n")
        sections = {s.name: s for s in collect_sections(tmp_path)}
        assert "measured rows" in sections["table3_runtime"].measured
        assert "```" in sections["table3_runtime"].render()

    def test_build_writes_output(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig4_policy_scatter.txt").write_text("wins=3\n")
        out = tmp_path / "EXPERIMENTS.md"
        text = build_experiments_md(results_dir=results, output=out)
        assert out.exists()
        assert "wins=3" in text
        assert "paper vs. measured" in text
        # Paper reference values are embedded for comparison.
        assert "5.8%" in text and "69.44%" in text

    def test_section_order_covers_all_paper_tables_and_figures(self):
        # Every evaluation element of the paper appears in the report.
        names = "\n".join(SECTION_ORDER)
        for required in ("fig3", "fig4", "table1", "table2", "fig7", "table3"):
            assert required in names
