"""Tests for failed-assumption core extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.solver import Solver, Status


class TestCores:
    def test_core_on_direct_contradiction(self):
        cnf = CNF([[1, 2]], num_vars=3)
        result = Solver(cnf).solve(assumptions=[3, -3])
        assert result.status is Status.UNSATISFIABLE
        assert set(result.core) <= {3, -3}
        assert len(result.core) == 2

    def test_core_excludes_irrelevant_assumptions(self):
        # x1 -> x2, assumption -2 conflicts with assumption 1; x5 irrelevant.
        cnf = CNF([[-1, 2]], num_vars=5)
        result = Solver(cnf).solve(assumptions=[5, 1, -2])
        assert result.status is Status.UNSATISFIABLE
        assert 5 not in result.core and -5 not in result.core
        assert set(result.core) == {1, -2}

    def test_core_single_when_formula_implies(self):
        cnf = CNF([[1]], num_vars=2)
        result = Solver(cnf).solve(assumptions=[-1])
        assert result.status is Status.UNSATISFIABLE
        assert result.core == [-1]

    def test_no_core_on_sat(self):
        cnf = CNF([[1, 2]])
        result = Solver(cnf).solve(assumptions=[1])
        assert result.status is Status.SATISFIABLE
        assert result.core is None

    def test_no_core_on_plain_unsat(self):
        cnf = CNF([[1], [-1]])
        result = Solver(cnf).solve(assumptions=[1])
        assert result.status is Status.UNSATISFIABLE
        assert result.core is None

    def test_core_chain(self):
        # 1 -> 2 -> 3 -> 4; assuming 1 and -4 is inconsistent.
        cnf = CNF([[-1, 2], [-2, 3], [-3, 4]], num_vars=6)
        result = Solver(cnf).solve(assumptions=[6, 1, -4])
        assert result.status is Status.UNSATISFIABLE
        assert set(result.core) == {1, -4}


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.integers(min_value=1, max_value=6).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=4,
        unique_by=abs,
    ),
)
def test_property_core_is_sufficient_for_unsat(seed, assumptions):
    """Formula + core must itself be unsatisfiable, and the core must be a
    subset of the assumptions."""
    cnf = random_ksat(6, 18, seed=seed)
    result = Solver(cnf).solve(assumptions=assumptions)
    if result.status is not Status.UNSATISFIABLE or result.core is None:
        return
    assert set(result.core) <= set(assumptions)
    hardened = CNF(
        [list(c.literals) for c in cnf.clauses] + [[lit] for lit in result.core],
        num_vars=cnf.num_vars,
    )
    assert Solver(hardened).solve().status is Status.UNSATISFIABLE
