"""Tests for the WalkSAT local-search solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.solver import Solver, Status, brute_force_status
from repro.solver.walksat import WalkSAT, walksat_phases


class TestWalkSAT:
    def test_solves_easy_sat(self):
        cnf = CNF([[1, 2], [-1, 3], [-2, -3]])
        result = WalkSAT(cnf, seed=1).solve(max_flips=1000)
        assert result.satisfied
        assert cnf.check_model(result.model)

    def test_solves_random_sat_instances(self):
        solved = 0
        for seed in range(5):
            cnf = random_ksat(30, 100, seed=seed)  # under-constrained: SAT
            result = WalkSAT(cnf, seed=seed).solve(max_flips=50_000)
            if result.satisfied:
                solved += 1
                assert cnf.check_model(result.model)
        assert solved >= 4  # local search should crack most of these

    def test_unsat_never_claims_model(self):
        cnf = CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        result = WalkSAT(cnf, seed=0).solve(max_flips=2000)
        assert not result.satisfied
        assert result.model is None
        assert result.best_unsatisfied >= 1

    def test_empty_clause_hopeless(self):
        result = WalkSAT(CNF([[]])).solve(max_flips=10)
        assert not result.satisfied

    def test_flip_budget_respected(self):
        cnf = random_ksat(50, 218, seed=3)
        result = WalkSAT(cnf, seed=0).solve(max_flips=100)
        assert result.flips <= 100

    def test_noise_bounds(self):
        with pytest.raises(ValueError):
            WalkSAT(CNF([[1]]), noise=1.5)

    def test_deterministic_per_seed(self):
        cnf = random_ksat(20, 80, seed=4)
        a = WalkSAT(cnf, seed=9).solve(max_flips=500)
        b = WalkSAT(cnf, seed=9).solve(max_flips=500)
        assert a.flips == b.flips
        assert a.best_unsatisfied == b.best_unsatisfied

    def test_best_assignment_tracks_minimum(self):
        cnf = random_ksat(25, 110, seed=7)
        result = WalkSAT(cnf, seed=2).solve(max_flips=300)
        # The reported best must evaluate to exactly best_unsatisfied.
        model = [None] + result.best_assignment[1:]
        unsatisfied = sum(
            1 for clause in cnf.clauses if not clause.satisfied_by(model)
        )
        assert unsatisfied == result.best_unsatisfied


class TestPhaseSeeding:
    def test_phases_vector_shape(self):
        cnf = random_ksat(15, 50, seed=0)
        phases = walksat_phases(cnf, max_flips=2000, seed=1)
        assert len(phases) == cnf.num_vars + 1
        assert all(isinstance(p, bool) for p in phases[1:])

    def test_seeding_cdcl_with_walksat_phases(self):
        cnf = random_ksat(40, 160, seed=2)  # satisfiable instance
        phases = walksat_phases(cnf, max_flips=20_000, seed=0)
        solver = Solver(cnf)
        for var in range(1, cnf.num_vars + 1):
            solver.decider.save_phase(var, phases[var])
        result = solver.solve()
        assert result.status is Status.SATISFIABLE
        # With a (near-)model seeded, the search should be fast.
        assert result.stats.conflicts < 1000


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_property_walksat_models_always_verify(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(3, 12)
    m = rng.randint(1, 40)
    cnf = random_ksat(n, m, k=min(3, n), seed=seed)
    result = WalkSAT(cnf, seed=seed).solve(max_flips=3000)
    if result.satisfied:
        assert cnf.check_model(result.model)
        assert brute_force_status(cnf) is Status.SATISFIABLE
