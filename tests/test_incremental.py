"""Tests for incremental solving (add_clause between solve calls)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.solver import Solver, Status, brute_force_status


class TestAddClause:
    def test_monotone_tightening(self):
        cnf = CNF([[1, 2]], num_vars=2)
        solver = Solver(cnf)
        assert solver.solve().status is Status.SATISFIABLE
        solver.add_clause([-1])
        result = solver.solve()
        assert result.status is Status.SATISFIABLE
        assert result.model[1] is False and result.model[2] is True
        solver.add_clause([-2])
        assert solver.solve().status is Status.UNSATISFIABLE

    def test_caller_cnf_not_mutated(self):
        cnf = CNF([[1, 2]])
        solver = Solver(cnf)
        solver.add_clause([-1])
        assert cnf.num_clauses == 1  # original untouched
        assert solver.cnf.num_clauses == 2

    def test_unknown_variable_rejected(self):
        solver = Solver(CNF([[1, 2]]))
        with pytest.raises(ValueError, match="exceeds"):
            solver.add_clause([3])

    def test_zero_literal_rejected(self):
        solver = Solver(CNF([[1]]))
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_empty_clause_makes_unsat(self):
        solver = Solver(CNF([[1, 2]]))
        solver.add_clause([])
        assert solver.solve().status is Status.UNSATISFIABLE

    def test_tautology_is_noop(self):
        solver = Solver(CNF([[1, 2]]))
        solver.add_clause([1, -1])
        assert solver.solve().status is Status.SATISFIABLE

    def test_added_unit_propagates(self):
        solver = Solver(CNF([[1, 2], [-1, 2]]))
        solver.add_clause([-2])
        assert solver.solve().status is Status.UNSATISFIABLE

    def test_contradicting_level0_unit(self):
        solver = Solver(CNF([[1], [2, 3]]))
        solver.solve()
        solver.add_clause([-1])
        assert solver.solve().status is Status.UNSATISFIABLE

    def test_add_after_sat_preserves_learned_state(self):
        cnf = random_ksat(40, 160, seed=2)
        solver = Solver(cnf)
        first = solver.solve()
        assert first.status is Status.SATISFIABLE
        # Block the found model (one blocking clause) and re-solve.
        blocking = [
            -(v if first.model[v] else -v) for v in range(1, cnf.num_vars + 1)
        ]
        solver.add_clause(blocking)
        second = solver.solve()
        if second.status is Status.SATISFIABLE:
            assert second.model != first.model
            assert solver.cnf.check_model(second.model)

    def test_model_enumeration(self):
        """Enumerate all models of a small formula by blocking clauses."""
        cnf = CNF([[1, 2]], num_vars=2)
        solver = Solver(cnf)
        models = set()
        while True:
            result = solver.solve()
            if result.status is not Status.SATISFIABLE:
                break
            bits = tuple(result.model[1:3])
            assert bits not in models
            models.add(bits)
            solver.add_clause(
                [-(v if result.model[v] else -v) for v in (1, 2)]
            )
        assert models == {(True, True), (True, False), (False, True)}


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=5000), st.integers(min_value=1, max_value=6))
def test_property_incremental_equals_monolithic(seed, extra):
    """Adding clauses incrementally == solving the combined formula."""
    import random

    rng = random.Random(seed)
    n = rng.randint(3, 8)
    base = random_ksat(n, rng.randint(2, 20), k=min(3, n), seed=seed)
    extras = [
        [rng.choice([v, -v]) for v in rng.sample(range(1, n + 1), min(2, n))]
        for _ in range(extra)
    ]

    solver = Solver(base)
    solver.solve()
    for clause in extras:
        solver.add_clause(clause)
    incremental = solver.solve()

    combined = CNF(
        [list(c.literals) for c in base.clauses] + extras, num_vars=n
    )
    assert incremental.status is brute_force_status(combined)
    if incremental.is_sat:
        assert combined.check_model(incremental.model)
