"""Chaos harness: fault injectors, scripted scenarios, determinism.

The harness itself is test infrastructure, so these tests check it at
two levels:

* the injectors do exactly what their schedule says — the N-th forward
  pass crashes, the scheduled journal append raises, the tagged task's
  worker gets its fault plan — and nothing else;
* whole scenarios run green against a real service: every invariant
  holds (terminal, correct, degraded-honest, fault-delivery, breaker
  recovery, replay), and running a scenario twice yields the same
  fingerprint — the determinism claim ``repro chaos
  --check-determinism`` enforces in CI.

Tests drive the event loop with ``asyncio.run`` (no pytest-asyncio
dependency).
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    SCENARIOS,
    ChaoticModel,
    FlakyJournal,
    InferenceFault,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.cli import main
from repro.models import NeuroSelect
from repro.parallel import ParallelRunner, SolveTask
from repro.parallel.supervisor import Fault
from repro.chaos.faults import attach_worker_faults
from repro.cnf import random_ksat
from repro.solver import SolverConfig, Status


# ---------------------------------------------------------------------------
# fault injectors


def test_chaotic_model_faults_fire_on_schedule():
    model = ChaoticModel(
        NeuroSelect(hidden_dim=8, seed=0),
        faults={2: InferenceFault("raise")},
    )
    from repro.graph import BipartiteGraph
    from repro.graph.batching import BatchedBipartiteGraph

    batch = BatchedBipartiteGraph(
        [BipartiteGraph(random_ksat(8, 24, seed=0))]
    )
    model.predict_proba_batch(batch)  # call 1: clean
    with pytest.raises(RuntimeError):
        model.predict_proba_batch(batch)  # call 2: scheduled crash
    model.predict_proba_batch(batch)  # call 3: clean again
    assert model.calls == 3
    assert model.triggered == [(2, "raise")]


def test_inference_fault_validation():
    with pytest.raises(ValueError):
        InferenceFault("explode")
    with pytest.raises(ValueError):
        InferenceFault("slow", seconds=-1.0)


def test_flaky_journal_fails_only_scheduled_writes(tmp_path):
    journal = FlakyJournal(
        tmp_path / "journal.jsonl", fail_writes=(2,)
    )
    journal.record("a", {"status": "SATISFIABLE"})
    with pytest.raises(OSError):
        journal.record("b", {"status": "SATISFIABLE"})
    journal.record("c", {"status": "SATISFIABLE"})
    assert journal.record_calls == 3
    assert journal.injected == 1
    assert journal.get("a") is not None
    assert journal.get("b") is None  # the failed write really was lost
    assert journal.get("c") is not None


def test_attach_worker_faults_translates_tags_to_indices():
    runner = ParallelRunner(workers=1)
    schedule = {"victim": Fault("raise", message="chaos: injected")}
    attach_worker_faults(runner, schedule)
    tasks = [
        SolveTask(cnf=random_ksat(8, 24, seed=i), policy="default",
                  config=SolverConfig(core="arena"), max_conflicts=500,
                  tag=tag)
        for i, tag in enumerate(["bystander", "victim"])
    ]
    outcomes = runner.run(tasks)
    assert outcomes[0].status in (
        Status.SATISFIABLE, Status.UNSATISFIABLE, Status.UNKNOWN
    )
    assert outcomes[1].status is Status.ERROR
    assert "chaos: injected" in outcomes[1].error
    assert runner.fault_plan is None  # restored after the run


# ---------------------------------------------------------------------------
# scenario registry


def test_registry_names_and_lookup():
    names = scenario_names()
    assert "mixed" in names and "inference-crash" in names
    assert get_scenario("mixed").name == "mixed"
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")
    for scenario in SCENARIOS.values():
        assert scenario.total_requests == scenario.waves * scenario.wave_size


# ---------------------------------------------------------------------------
# scenarios against a live service


def _assert_green(report):
    for invariant in report.invariants:
        assert invariant.ok, f"{invariant.name}: {invariant.detail}"
    assert report.ok


def test_journal_flake_scenario_is_green_and_deterministic(tmp_path):
    first = run_scenario("journal-flake", seed=0,
                         workdir=tmp_path / "run1")
    _assert_green(first)
    second = run_scenario("journal-flake", seed=0,
                          workdir=tmp_path / "run2")
    assert first.fingerprint == second.fingerprint
    assert first.service_stats["journal_injected"] == 1
    assert first.service_stats["journal_errors"] == 1


def test_inference_crash_scenario_breaker_recovers(tmp_path):
    report = run_scenario("inference-crash", seed=0, workdir=tmp_path)
    _assert_green(report)
    edges = [(t[0], t[1]) for t in report.breaker_transitions]
    assert ("CLOSED", "OPEN") in edges
    assert ("HALF_OPEN", "CLOSED") in edges
    degraded = [r for r in report.records if r.degraded]
    assert len(degraded) == 6  # both crashed waves, full batches
    assert all(r.policy == "default" for r in degraded)


def test_worker_kill_scenario_structured_failures(tmp_path):
    report = run_scenario("worker-kill", seed=0, workdir=tmp_path)
    _assert_green(report)
    by_ordinal = {r.ordinal: r for r in report.records}
    assert by_ordinal[1].status == "ERROR"      # SIGKILLed worker
    assert by_ordinal[1].code == 500
    assert by_ordinal[4].status == "MEMOUT"     # OOMed worker
    assert by_ordinal[4].code == 507
    healthy = [r for r in report.records if r.ordinal not in (1, 4)]
    assert all(r.status not in ("ERROR", "MEMOUT") for r in healthy)


def test_restart_scenario_replays_from_journal(tmp_path):
    report = run_scenario("restart", seed=0, workdir=tmp_path)
    _assert_green(report)
    replayed = [r for r in report.records if r.phase == "replay"]
    assert len(replayed) == 6
    assert all(r.resumed for r in replayed)


def test_disconnect_scenario_terminates_and_fingerprints(tmp_path):
    report = run_scenario("disconnect", seed=0, workdir=tmp_path)
    _assert_green(report)
    torn = [r for r in report.records if r.disconnected]
    assert len(torn) == 1
    assert torn[0].terminal
    assert torn[0].facts()["status"] == "DISCONNECTED"


def test_different_seed_changes_fingerprint(tmp_path):
    a = run_scenario("journal-flake", seed=0, workdir=tmp_path / "a")
    b = run_scenario("journal-flake", seed=1, workdir=tmp_path / "b")
    assert a.ok and b.ok
    assert a.fingerprint != b.fingerprint


# ---------------------------------------------------------------------------
# CLI


def test_cli_chaos_list_and_run(tmp_path, capsys):
    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
    code = main([
        "chaos", "--scenario", "journal-flake",
        "--workdir", str(tmp_path), "--json",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert '"ok": true' in captured
