"""Tests for CNF-to-graph encodings (Sec. 4.2)."""

import numpy as np
import pytest

from repro.cnf import CNF, random_ksat
from repro.graph import BipartiteGraph, LiteralClauseGraph


class TestBipartiteGraph:
    def test_counts(self):
        cnf = CNF([[1, -2], [2, 3, -1]])
        g = BipartiteGraph(cnf)
        assert g.num_vars == 3
        assert g.num_clauses == 2
        assert g.num_edges == 5
        assert g.num_nodes == 5

    def test_edge_weights_encode_polarity(self):
        cnf = CNF([[1, -2]])
        g = BipartiteGraph(cnf)
        weights = dict(zip(g.edge_var, g.edge_weight))
        assert weights[0] == 1.0  # x1 positive
        assert weights[1] == -1.0  # x2 negated

    def test_edge_indices_zero_based(self):
        cnf = CNF([[3]])
        g = BipartiteGraph(cnf)
        assert g.edge_var[0] == 2
        assert g.edge_clause[0] == 0

    def test_degrees(self):
        cnf = CNF([[1, 2], [1, 3], [1, -2]])
        g = BipartiteGraph(cnf)
        assert g.var_degree[0] == 3.0  # x1 in all three clauses
        assert list(g.clause_degree) == [2.0, 2.0, 2.0]

    def test_degree_floor_prevents_zero_division(self):
        cnf = CNF([[1]], num_vars=5)  # vars 2..5 isolated
        g = BipartiteGraph(cnf)
        assert g.var_degree.min() == 1.0

    def test_initial_features_per_paper(self):
        cnf = CNF([[1, 2]])
        g = BipartiteGraph(cnf)
        assert np.all(g.initial_var_features(4) == 1.0)
        assert np.all(g.initial_clause_features(4) == 0.0)
        assert g.initial_var_features(4).shape == (2, 4)
        assert g.initial_clause_features(4).shape == (1, 4)

    def test_num_nodes_matches_paper_filter_semantics(self):
        cnf = random_ksat(50, 200, seed=0)
        g = BipartiteGraph(cnf)
        assert g.num_nodes == 50 + 200


class TestLiteralClauseGraph:
    def test_counts(self):
        cnf = CNF([[1, -2], [2]])
        g = LiteralClauseGraph(cnf)
        assert g.num_literals == 4
        assert g.num_clauses == 2
        assert g.num_edges == 3

    def test_literal_indexing(self):
        cnf = CNF([[1, -1]])
        g = LiteralClauseGraph(cnf)
        assert set(g.edge_lit) == {0, 1}  # x1 -> 0, ~x1 -> 1

    def test_flip_index_is_involution(self):
        cnf = random_ksat(6, 10, seed=0)
        g = LiteralClauseGraph(cnf)
        flip = g.flip_index()
        np.testing.assert_array_equal(flip[flip], np.arange(g.num_literals))
        assert flip[0] == 1 and flip[1] == 0

    def test_degree_floor(self):
        cnf = CNF([[1]])
        g = LiteralClauseGraph(cnf)
        assert g.lit_degree.min() == 1.0  # the unused ~x1 node

    def test_repr(self):
        assert "literals=4" in repr(LiteralClauseGraph(CNF([[1, 2]])))
