"""Tests for cross-validation utilities."""

import pytest

from repro.cnf import random_ksat
from repro.models import NeuroSelect
from repro.selection.validation import (
    CrossValidationResult,
    cross_validate,
    k_fold_splits,
)
from repro.selection.metrics import ClassificationMetrics

from tests.conftest import make_labeled


@pytest.fixture
def instances():
    sparse = [make_labeled(random_ksat(10, 20, seed=s), 0) for s in range(6)]
    dense = [make_labeled(random_ksat(10, 50, seed=s), 1) for s in range(6)]
    return sparse + dense


class TestKFoldSplits:
    def test_covers_every_instance_exactly_once_as_validation(self, instances):
        splits = k_fold_splits(instances, k=4, seed=0)
        assert len(splits) == 4
        validation_ids = [id(i) for _, val in splits for i in val]
        assert sorted(validation_ids) == sorted(id(i) for i in instances)

    def test_train_validation_disjoint(self, instances):
        for train, validation in k_fold_splits(instances, k=3, seed=1):
            assert not {id(i) for i in train} & {id(i) for i in validation}
            assert len(train) + len(validation) == len(instances)

    def test_stratified_balance(self, instances):
        for _, validation in k_fold_splits(instances, k=3, seed=2, stratify=True):
            positives = sum(i.label for i in validation)
            assert 1 <= positives <= 3  # roughly half of each fold of 4

    def test_unstratified_mode(self, instances):
        splits = k_fold_splits(instances, k=3, seed=2, stratify=False)
        assert len(splits) == 3

    def test_k_too_small_rejected(self, instances):
        with pytest.raises(ValueError):
            k_fold_splits(instances, k=1)

    def test_too_few_instances_rejected(self, instances):
        with pytest.raises(ValueError):
            k_fold_splits(instances[:2], k=5)

    def test_deterministic(self, instances):
        a = k_fold_splits(instances, k=3, seed=7)
        b = k_fold_splits(instances, k=3, seed=7)
        assert [[id(i) for i in val] for _, val in a] == [
            [id(i) for i in val] for _, val in b
        ]


class TestCrossValidate:
    def test_runs_all_folds(self, instances):
        result = cross_validate(
            lambda: NeuroSelect(hidden_dim=8, seed=0),
            instances,
            k=3,
            epochs=3,
        )
        assert len(result.fold_metrics) == 3
        assert 0.0 <= result.mean_accuracy <= 1.0
        assert result.std_accuracy >= 0.0

    def test_aggregates(self):
        result = CrossValidationResult(
            fold_metrics=[
                ClassificationMetrics(1, 0, 1, 0),  # acc 1.0
                ClassificationMetrics(0, 1, 1, 0),  # acc 0.5
            ]
        )
        assert result.mean_accuracy == pytest.approx(0.75)
        assert result.std_accuracy > 0

    def test_empty_result(self):
        result = CrossValidationResult()
        assert result.mean_accuracy == 0.0
        assert result.std_accuracy == 0.0
