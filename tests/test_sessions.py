"""Incremental sessions: the differential battery that locks them down.

The claims under test, each pinned here:

* **Warm = fresh** — a :class:`SolverSession` driven through any random
  add-clause/assumption schedule returns, at every solve step, a status
  bit-identical to a *fresh* solver on the accumulated formula under the
  same assumptions — on both engine cores (hypothesis property);
* **Cores agree** — the object core and the arena core return identical
  statuses at every step of the same schedule;
* **Failed-assumption cores are consistent** — every
  UNSAT-under-assumptions answer carries a core that is a subset of the
  assumptions and still renders the formula UNSAT on its own;
* **IPASIR semantics** — assumptions never persist across calls, added
  clauses always do, budgets are per-call, and ``add`` after an UNSAT
  answer keeps the session usable (the stale-state regression);
* **Drift-gated selection** — :class:`SelectorSession` reuses the
  cached embedding under small feature deltas, recomputes past the
  threshold, and never shares cache across sessions;
* **Serve sessions** — the manager enforces TTL eviction and the
  session-capacity 429, and the HTTP surface round-trips a sticky
  session end to end;
* **The cross-core fuzz oracle** — clean on sound solvers, and the
  incremental checks actually fire when a buggy session is injected.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat, to_dimacs
from repro.fuzz import OracleContext
from repro.fuzz.oracles import PolicyAgreementOracle, derive_schedule
from repro.models import NeuroSelect
from repro.selection import (
    DEFAULT_DRIFT_THRESHOLD,
    SelectorSession,
    feature_distance,
)
from repro.serve import AdmissionError, ServeConfig, SolveService
from repro.serve.http import bound_address, start_service
from repro.serve.sessions import SessionManager
from repro.solver import Solver, SolverConfig, Status
from repro.solver.session import SolverSession, replay_schedule

CORES = ("object", "arena")


# ---------------------------------------------------------------------------
# hypothesis strategies


@st.composite
def schedules(draw, max_vars: int = 6, max_steps: int = 8):
    """A seed formula plus a random add/solve schedule over it."""
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=3)
    seed_clauses = draw(st.lists(clause, min_size=0, max_size=10))
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("add"), clause),
                st.tuples(
                    st.just("solve"),
                    st.lists(literal, min_size=0, max_size=3),
                ),
            ),
            min_size=1,
            max_size=max_steps,
        )
    )
    # Always end on a solve so every added clause gets exercised.
    steps = list(steps) + [("solve", draw(st.lists(literal, max_size=2)))]
    return CNF(seed_clauses, num_vars=num_vars), steps


def _fresh_status(cnf: CNF, assumptions, core: str) -> Status:
    """Fresh-solver status on the accumulated formula (the reference)."""
    return (
        Solver(cnf.copy(), config=SolverConfig(core=core))
        .solve(assumptions=assumptions)
        .status
    )


# ---------------------------------------------------------------------------
# the differential battery


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_warm_session_matches_fresh_resolve_on_both_cores(case):
    """At every solve step, warm status == fresh status, on each core —
    and the two cores agree with each other."""
    seed, steps = case
    sessions = {
        core: SolverSession(seed.copy(), config=SolverConfig(core=core))
        for core in CORES
    }
    accumulated = seed.copy()
    for op, lits in steps:
        if op == "add":
            accumulated.add_clause(lits)
            for session in sessions.values():
                session.add(*lits)
            continue
        statuses = {
            core: session.solve(assumptions=lits).status
            for core, session in sessions.items()
        }
        assert statuses["object"] is statuses["arena"]
        for core in CORES:
            assert statuses[core] is _fresh_status(accumulated, lits, core), (
                f"{core} warm session diverged from fresh re-solve "
                f"under assumptions {lits}"
            )


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_failed_cores_are_consistent(case):
    """Every failed-assumption core is a subset of the assumptions and
    keeps the formula UNSAT on its own."""
    seed, steps = case
    for core in CORES:
        session = SolverSession(seed.copy(), config=SolverConfig(core=core))
        accumulated = seed.copy()
        for op, lits in steps:
            if op == "add":
                accumulated.add_clause(lits)
                session.add(*lits)
                continue
            result = session.solve(assumptions=lits)
            if result.core is None:
                continue
            assert result.status is Status.UNSATISFIABLE
            assert set(result.core) <= set(lits)
            assert session.failed() == list(result.core)
            again = Solver(accumulated.copy()).solve(
                assumptions=list(result.core)
            )
            assert again.status is Status.UNSATISFIABLE, (
                f"{core} core {result.core} insufficient"
            )


@settings(max_examples=40, deadline=None)
@given(schedules())
def test_replay_schedule_reproduces_statuses(case):
    """`replay_schedule` (the oracle's driver) equals the manual loop."""
    seed, steps = case
    manual = SolverSession(seed.copy(), config=SolverConfig(core="arena"))
    manual_statuses = []
    for op, lits in steps:
        if op == "add":
            manual.add(*lits)
        else:
            manual_statuses.append(manual.solve(assumptions=lits).status)
    replayed = replay_schedule(
        SolverSession(seed.copy(), config=SolverConfig(core="arena")), steps
    )
    assert [r.status for r in replayed] == manual_statuses


# ---------------------------------------------------------------------------
# IPASIR semantics


class TestSessionSemantics:
    @pytest.mark.parametrize("core", CORES)
    def test_assumptions_do_not_persist(self, core):
        session = SolverSession(
            CNF([[1, 2]], num_vars=2), config=SolverConfig(core=core)
        )
        session.assume(-1, -2)
        assert session.solve().status is Status.UNSATISFIABLE
        # Next call runs without the assumptions: SAT again.
        assert session.solve().status is Status.SATISFIABLE

    @pytest.mark.parametrize("core", CORES)
    def test_explicit_assumptions_replace_queued(self, core):
        session = SolverSession(
            CNF([[1, 2]], num_vars=2), config=SolverConfig(core=core)
        )
        session.assume(-1, -2)
        result = session.solve(assumptions=[1])
        assert result.status is Status.SATISFIABLE
        assert result.model[1] is True
        # The queued set was consumed, not merely shadowed.
        assert session.solve().status is Status.SATISFIABLE

    @pytest.mark.parametrize("core", CORES)
    def test_added_clauses_persist(self, core):
        session = SolverSession(3, config=SolverConfig(core=core))
        session.add(1, 2).add(-1, 3)
        assert session.solve().status is Status.SATISFIABLE
        session.add(-2).add(-3)
        assert session.solve().status is Status.UNSATISFIABLE
        assert session.added_clauses == 4

    @pytest.mark.parametrize("core", CORES)
    def test_failed_membership(self, core):
        session = SolverSession(
        CNF([[1, 2], [-1, 2]], num_vars=2), config=SolverConfig(core=core)
        )
        result = session.solve(assumptions=[-2])
        assert result.status is Status.UNSATISFIABLE
        assert session.failed(-2) is True
        assert session.failed(2) is False
        assert session.failed() == [-2]

    def test_assume_rejects_bad_literals(self):
        session = SolverSession(2)
        with pytest.raises(ValueError):
            session.assume(0)
        with pytest.raises(ValueError):
            session.assume(3)

    @pytest.mark.parametrize("core", CORES)
    def test_budgets_are_per_call(self, core):
        cnf = random_ksat(60, 258, seed=5)
        session = SolverSession(cnf, config=SolverConfig(core=core))
        baseline = Solver(
            cnf.copy(), config=SolverConfig(core=core)
        ).solve(max_conflicts=50)
        # Burn budget, then give a later call the same per-call budget a
        # fresh solver got: the session must not have *less* room.
        session.solve(max_conflicts=10)
        result = session.solve(max_conflicts=50)
        if baseline.status.decided:
            assert result.status.decided

    @pytest.mark.parametrize("core", CORES)
    def test_add_after_unsat_under_assumptions_keeps_session_usable(
        self, core
    ):
        """The stale-state regression: an UNSAT-under-assumptions answer
        must not poison later adds/solves on either core."""
        session = SolverSession(
            CNF([[1, 2], [-1, 2]], num_vars=3), config=SolverConfig(core=core)
        )
        assert session.solve(assumptions=[-2]).status is Status.UNSATISFIABLE
        session.add(2, 3)  # grow the formula *after* the UNSAT answer
        result = session.solve()
        assert result.status is Status.SATISFIABLE
        assert session.cnf.check_model(result.model)
        # And a genuine (assumption-free) UNSAT is still reachable.
        session.add(-2)
        assert session.solve().status is Status.UNSATISFIABLE

    @pytest.mark.parametrize("core", CORES)
    def test_add_after_hard_unsat_stays_unsat(self, core):
        """Once the formula itself is UNSAT, it stays UNSAT through any
        further adds (monotonicity) without raising."""
        session = SolverSession(
            CNF([[1], [-1]], num_vars=2), config=SolverConfig(core=core)
        )
        assert session.solve().status is Status.UNSATISFIABLE
        session.add(2)
        assert session.solve().status is Status.UNSATISFIABLE
        assert session.solve(assumptions=[2]).status is Status.UNSATISFIABLE

    def test_warm_session_reuses_learned_state(self):
        """Consecutive solves on a warm session spend no extra conflicts
        re-deriving what the first call learned (the warm-restart win)."""
        cnf = random_ksat(40, 160, seed=9)
        session = SolverSession(cnf, config=SolverConfig(core="arena"))
        first = session.solve()
        assert first.status is Status.SATISFIABLE
        conflicts_before = session.solver.stats.conflicts
        second = session.solve()
        assert second.status is Status.SATISFIABLE
        # Saved phases steer straight back to a model: no new conflicts.
        assert session.solver.stats.conflicts == conflicts_before


# ---------------------------------------------------------------------------
# drift-gated selection


def _features_cnf(num_clauses: int = 60, seed: int = 1) -> CNF:
    return random_ksat(20, num_clauses, seed=seed)


class _CountingModel:
    """Stub model: counts forward passes, returns a fixed probability."""

    decision_threshold = 0.5

    def __init__(self, probability: float = 0.9):
        self.probability = probability
        self.calls = 0

    def predict_proba(self, graph) -> float:
        self.calls += 1
        return self.probability


class TestSelectorSession:
    def test_identical_formula_reuses_embedding(self):
        model = _CountingModel()
        session = SelectorSession(model)
        cnf = _features_cnf()
        first = session.select(cnf)
        second = session.select(cnf)
        assert model.calls == 1
        assert first.reused is False and second.reused is True
        assert second.policy == first.policy
        assert session.stats() == {
            "selections": 2,
            "inference_passes": 1,
            "embedding_reuses": 1,
        }

    def test_small_delta_reuses_large_delta_recomputes(self):
        model = _CountingModel()
        session = SelectorSession(model)
        cnf = _features_cnf(num_clauses=400)
        session.select(cnf)
        # Two extra 3-clauses on 400: far under the 10% drift threshold
        # on every dimension (same clause length keeps min/max stable).
        small = cnf.copy()
        small.add_clause([1, 2, 3])
        small.add_clause([-4, 5, 6])
        assert session.select(small).reused is True
        assert model.calls == 1
        # Doubling the clause count: way past the threshold.
        big = cnf.copy()
        for i in range(400):
            big.add_clause([1 + (i % 19), -(2 + (i % 17))])
        selection = session.select(big)
        assert selection.reused is False
        assert selection.distance > DEFAULT_DRIFT_THRESHOLD
        assert model.calls == 2

    def test_drift_reference_is_last_embedded_snapshot(self):
        """Chained sub-threshold deltas cannot creep past the threshold:
        distance is measured against the *embedded* formula."""
        model = _CountingModel()
        session = SelectorSession(model, drift_threshold=0.05)
        base = _features_cnf(num_clauses=200)
        session.select(base)
        drifted = base.copy()
        recomputes = 0
        for i in range(40):
            drifted.add_clause([1 + (i % 19), -(2 + (i % 17))])
            if not session.select(drifted).reused:
                recomputes += 1
        # 40 single-clause steps on 200 clauses is ~20% total drift:
        # chained reuse would never recompute; snapshot-anchored must.
        assert recomputes >= 1
        assert model.calls == 1 + recomputes

    def test_cache_never_shared_across_sessions(self):
        model = _CountingModel()
        cnf = _features_cnf()
        a = SelectorSession(model)
        b = SelectorSession(model)
        a.select(cnf)
        selection = b.select(cnf)
        assert selection.reused is False
        assert model.calls == 2
        assert a.id != b.id

    def test_invalidate_forces_recompute(self):
        model = _CountingModel()
        session = SelectorSession(model)
        cnf = _features_cnf()
        session.select(cnf)
        session.invalidate()
        assert session.select(cnf).reused is False
        assert model.calls == 2

    def test_threshold_zero_always_recomputes_on_any_change(self):
        model = _CountingModel()
        session = SelectorSession(model, drift_threshold=0.0)
        cnf = _features_cnf()
        session.select(cnf)
        changed = cnf.copy()
        changed.add_clause([1, -2])
        assert session.select(changed).reused is False
        # ... but a truly identical formula still reuses (distance 0).
        assert session.select(changed).reused is True

    def test_no_model_defaults_without_caching_model_calls(self):
        session = SelectorSession(None)
        selection = session.select(_features_cnf())
        assert selection.policy == "default"
        assert selection.used_model is False
        assert session.select(_features_cnf()).reused is True

    def test_real_model_end_to_end(self):
        session = SelectorSession(NeuroSelect(hidden_dim=8, seed=0))
        cnf = _features_cnf()
        first = session.select(cnf)
        assert first.used_model is True
        assert first.probability is not None
        assert session.select(cnf).reused is True
        assert session.inference_passes == 1

    def test_feature_distance_basics(self):
        assert feature_distance([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert feature_distance([110.0, 2.0], [100.0, 2.0]) == pytest.approx(
            0.1
        )
        # Sub-unit dimensions are compared absolutely (denominator >= 1).
        assert feature_distance([0.5, 0.0], [0.25, 0.0]) == pytest.approx(
            0.25
        )
        with pytest.raises(ValueError):
            feature_distance([1.0], [1.0, 2.0])


# ---------------------------------------------------------------------------
# the cross-core fuzz oracle


class TestCoresOracleSchedules:
    def test_derived_schedule_is_deterministic_and_well_formed(self):
        cnf = random_ksat(10, 30, seed=4)
        a, b = derive_schedule(cnf), derive_schedule(cnf)
        assert a == b
        assert a[0] == ("solve", [])
        assert a[-1][0] == "solve" and a[-1][1]
        for op, lits in a:
            assert op in ("add", "solve")
            assert all(lit != 0 and abs(lit) <= 10 for lit in lits)

    def test_empty_formula_has_no_schedule(self):
        assert derive_schedule(CNF(clauses=[], num_vars=0)) == []

    def test_clean_on_sound_solver(self):
        oracle = PolicyAgreementOracle(mode="cores")
        for seed in range(3):
            cnf = random_ksat(8, 28, seed=seed)
            assert oracle.check(cnf, OracleContext()) == []

    def test_detects_core_corruption(self):
        """A session whose failed cores contain junk literals trips the
        core-not-assumptions check."""

        class LyingSession(SolverSession):
            def solve(self, assumptions=None, **kwargs):
                result = super().solve(assumptions=assumptions, **kwargs)
                if result.core is not None:
                    result.core = [999]
                return result

        oracle = PolicyAgreementOracle(mode="cores")
        oracle.session_factory = lambda cnf, core: LyingSession(
            cnf.copy(), config=SolverConfig(core=core)
        )
        # The chain trap: its derived schedule is known to hit
        # UNSAT-under-assumptions (conflicting endpoints).
        cnf = CNF(
            [[-1, 2], [-2, 3], [-3, 4], [-4, 5], [-5, 6]], num_vars=6
        )
        found = oracle.check(cnf, OracleContext())
        assert any(d.kind == "core-not-assumptions" for d in found)

    def test_detects_status_flip(self):
        """A session that lies UNSAT→SAT on the arena trips both the
        cross-core and the warm-vs-fresh status checks."""

        class FlippingSession(SolverSession):
            def solve(self, assumptions=None, **kwargs):
                result = super().solve(assumptions=assumptions, **kwargs)
                if (
                    self.core == "arena"
                    and result.status is Status.UNSATISFIABLE
                    and result.core
                ):
                    result.status = Status.SATISFIABLE
                    result.core = None
                return result

        oracle = PolicyAgreementOracle(mode="cores")
        oracle.session_factory = lambda cnf, core: FlippingSession(
            cnf.copy(), config=SolverConfig(core=core)
        )
        # The chain trap: derived schedules hit UNSAT-under-assumptions.
        cnf = CNF(
            [[-1, 2], [-2, 3], [-3, 4], [-4, 5], [-5, 6]], num_vars=6
        )
        found = oracle.check(cnf, OracleContext())
        assert any(d.kind == "status-mismatch" for d in found)

    def test_large_formulas_skip_the_schedule(self):
        oracle = PolicyAgreementOracle(mode="cores")
        oracle.schedule_max_vars = 5
        fired = []
        oracle.session_factory = lambda cnf, core: fired.append(core) or (
            SolverSession(cnf.copy(), config=SolverConfig(core=core))
        )
        assert oracle.check(random_ksat(8, 28, seed=1), OracleContext()) == []
        assert fired == []


# ---------------------------------------------------------------------------
# serve sessions: manager semantics


def _manager(**kwargs) -> SessionManager:
    defaults = dict(model=None, solver_config=SolverConfig(core="arena"))
    defaults.update(kwargs)
    return SessionManager(**defaults)


class TestSessionManager:
    def test_create_solve_close(self):
        manager = _manager()
        session = manager.create(cnf=CNF([[1, 2], [-1, 3]], num_vars=3))

        async def scenario():
            first = await manager.solve(session, assumptions=[-2])
            second = await manager.solve(
                session, add=[[-3]], assumptions=[-2]
            )
            return first, second

        first, second = asyncio.run(scenario())
        assert first["status"] == "SATISFIABLE"
        assert second["status"] == "UNSATISFIABLE"
        assert set(second["failed"]) <= {-2}
        assert manager.close(session.id) is True
        assert manager.get(session.id) is None
        assert manager.stats()["closed"] == 1

    def test_capacity_rejects_with_admission_error(self):
        manager = _manager(max_sessions=2)
        manager.create(num_vars=2)
        manager.create(num_vars=2)
        with pytest.raises(AdmissionError) as err:
            manager.create(num_vars=2)
        assert err.value.reason == "sessions-full"
        assert err.value.retry_after is not None

    def test_ttl_eviction_is_lazy_and_counted(self):
        manager = _manager(session_ttl=30.0)
        session = manager.create(num_vars=2)
        # Backdate the last touch beyond the TTL; the next manager
        # access must evict it.
        session.last_used -= 31.0
        assert manager.get(session.id) is None
        stats = manager.stats()
        assert stats["active"] == 0
        assert stats["evicted"] == 1

    def test_eviction_frees_capacity(self):
        manager = _manager(max_sessions=1, session_ttl=30.0)
        first = manager.create(num_vars=2)
        first.last_used -= 31.0
        second = manager.create(num_vars=2)  # would 429 without eviction
        assert second.id != first.id

    def test_solver_error_does_not_kill_the_session(self):
        manager = _manager()
        session = manager.create(num_vars=2)

        async def scenario():
            with pytest.raises(ValueError):
                await manager.solve(session, add=[[5]])  # unknown variable
            return await manager.solve(session, add=[[1, 2]])

        payload = asyncio.run(scenario())
        assert payload["status"] == "SATISFIABLE"
        assert manager.get(session.id) is session

    def test_selection_drives_the_warm_solver_policy(self):
        manager = _manager(model=_CountingModel(probability=0.9))
        session = manager.create(cnf=random_ksat(20, 60, seed=1))

        async def scenario():
            return await manager.solve(session)

        payload = asyncio.run(scenario())
        assert payload["label"] == 1
        assert payload["policy"] == "frequency"
        assert session.solver.policy_name == "frequency"


# ---------------------------------------------------------------------------
# serve sessions: HTTP surface


async def _http_service(**cfg):
    service = SolveService(
        NeuroSelect(hidden_dim=8, seed=0),
        ServeConfig(**{"max_batch": 4, "flush_window": 0.05, **cfg}),
    )
    server, _ = await start_service(service, port=0)
    host, port = bound_address(server)
    from repro.serve import ServeClient

    return service, server, ServeClient(host, port)


async def _http_teardown(service, server):
    server.close()
    await server.wait_closed()
    await service.stop()


class TestSessionHttp:
    def test_full_session_lifecycle(self):
        cnf = random_ksat(12, 40, seed=3)

        async def scenario():
            service, server, client = await _http_service()
            try:
                created = await client.session_create(dimacs=to_dimacs(cnf))
                sid = created.json["id"]
                solved = await client.session_solve(sid, max_conflicts=5000)
                again = await client.session_solve(
                    sid, assumptions=[1], max_conflicts=5000
                )
                info = await client.session_info(sid)
                closed = await client.session_close(sid)
                gone = await client.session_info(sid)
            finally:
                await _http_teardown(service, server)
            return created, solved, again, info, closed, gone

        created, solved, again, info, closed, gone = asyncio.run(scenario())
        assert created.code == 201
        assert solved.code == 200
        assert solved.json["status"] in ("SATISFIABLE", "UNSATISFIABLE")
        assert solved.json["reused_embedding"] is False
        assert again.code == 200
        assert again.json["reused_embedding"] is True  # identical formula
        assert info.code == 200
        assert info.json["solves"] == 2
        assert closed.code == 200
        assert gone.code == 404

    def test_session_capacity_http_429(self):
        async def scenario():
            service, server, client = await _http_service(max_sessions=1)
            try:
                first = await client.session_create(num_vars=2)
                second = await client.session_create(num_vars=2)
            finally:
                await _http_teardown(service, server)
            return first, second

        first, second = asyncio.run(scenario())
        assert first.code == 201
        assert second.code == 429
        assert second.retry_after is not None

    def test_malformed_session_requests_400(self):
        async def scenario():
            service, server, client = await _http_service()
            try:
                bad_create = await client._call(
                    "POST", "/sessions", {"dimacs": "p cnf oops"}
                )
                created = await client.session_create(num_vars=2)
                sid = created.json["id"]
                bad_add = await client._call(
                    "POST", f"/sessions/{sid}/solve", {"add": "nope"}
                )
                bad_var = await client.session_solve(sid, add=[[7]])
                still_alive = await client.session_solve(sid, add=[[1, 2]])
            finally:
                await _http_teardown(service, server)
            return bad_create, bad_add, bad_var, still_alive

        bad_create, bad_add, bad_var, still_alive = asyncio.run(scenario())
        assert bad_create.code == 400
        assert bad_add.code == 400
        assert bad_var.code == 400  # solver rejected; session survives
        assert still_alive.code == 200

    def test_healthz_reports_sessions(self):
        async def scenario():
            service, server, client = await _http_service()
            try:
                await client.session_create(num_vars=2)
                health = await client.health()
            finally:
                await _http_teardown(service, server)
            return health

        health = asyncio.run(scenario())
        assert health.json["sessions"]["active"] == 1
        assert health.json["sessions"]["created"] == 1
