"""Tests for literal encoding and value types."""

import pytest

from repro.solver.types import (
    FALSE,
    TRUE,
    UNASSIGNED,
    Status,
    decode,
    encode,
    is_positive,
    lit_sign_value,
    negate,
    variable_of,
)


class TestEncoding:
    @pytest.mark.parametrize("dimacs", [1, -1, 5, -5, 123, -123])
    def test_round_trip(self, dimacs):
        assert decode(encode(dimacs)) == dimacs

    def test_positive_encoding_even(self):
        assert encode(3) == 6
        assert encode(-3) == 7

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            encode(0)

    def test_negate_is_involution(self):
        for lit in (2, 3, 10, 11):
            assert negate(negate(lit)) == lit
            assert negate(lit) != lit

    def test_negate_flips_sign(self):
        assert decode(negate(encode(4))) == -4
        assert decode(negate(encode(-4))) == 4

    def test_variable_of(self):
        assert variable_of(encode(9)) == 9
        assert variable_of(encode(-9)) == 9

    def test_is_positive(self):
        assert is_positive(encode(2))
        assert not is_positive(encode(-2))

    def test_lit_sign_value(self):
        assert lit_sign_value(encode(1)) == TRUE
        assert lit_sign_value(encode(-1)) == FALSE


class TestStatus:
    def test_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(Status.SATISFIABLE)

    def test_values_distinct(self):
        assert len({Status.SATISFIABLE, Status.UNSATISFIABLE, Status.UNKNOWN}) == 3

    def test_constants(self):
        assert TRUE == 1 and FALSE == 0 and UNASSIGNED == -1
