"""Tests for decision-threshold calibration of the trainer."""

import pytest

from repro.cnf import CNF, random_ksat
from repro.models import NeuroSelect
from repro.selection import Trainer
from repro.selection.dataset import LabeledInstance
from repro.selection.labeling import PolicyComparison
from repro.solver import Status


def make_instance(cnf, label, default_props, frequency_props):
    comparison = PolicyComparison(
        default_result_status=Status.SATISFIABLE,
        frequency_result_status=Status.SATISFIABLE,
        default_propagations=default_props,
        frequency_propagations=frequency_props,
        label=label,
    )
    return LabeledInstance(cnf=cnf, year=2020, family="test", comparison=comparison)


@pytest.fixture
def instances():
    cnfs = [random_ksat(10, 30, seed=s) for s in range(6)]
    # Three instances where frequency saves a lot, three where it loses.
    return [
        make_instance(cnfs[0], 1, 10_000, 5_000),
        make_instance(cnfs[1], 1, 8_000, 6_000),
        make_instance(cnfs[2], 1, 9_000, 7_000),
        make_instance(cnfs[3], 0, 5_000, 9_000),
        make_instance(cnfs[4], 0, 6_000, 8_000),
        make_instance(cnfs[5], 0, 7_000, 7_500),
    ]


class TestCalibration:
    def test_invalid_mode_rejected(self, instances):
        trainer = Trainer(NeuroSelect(hidden_dim=8, seed=0), epochs=1)
        with pytest.raises(ValueError):
            trainer.calibrate_threshold(instances, mode="bogus")

    def test_threshold_stored_on_model(self, instances):
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, epochs=1)
        threshold = trainer.calibrate_threshold(instances, mode="f1")
        assert model.decision_threshold == threshold

    def test_effort_mode_beats_all_default_when_model_separates(self, instances):
        """After overfitting the labels, effort calibration must recover at
        least the savings of the perfect selector on the train set."""
        model = NeuroSelect(hidden_dim=8, seed=0)
        trainer = Trainer(model, learning_rate=5e-3, epochs=60)
        trainer.fit(instances)
        trainer.calibrate_threshold(instances, mode="effort")
        chosen_savings = sum(
            inst.comparison.default_propagations
            - inst.comparison.frequency_propagations
            for inst in instances
            if model.predict(inst.cnf, threshold=trainer.threshold) == 1
        )
        # Perfect selection on these instances saves 5000+2000+2000.
        assert chosen_savings == 9_000

    def test_effort_mode_degenerates_gracefully(self):
        # All savings zero -> neutral threshold.
        cnf = CNF([[1, 2]])
        flat = [make_instance(cnf, 0, 100, 100)]
        trainer = Trainer(NeuroSelect(hidden_dim=8, seed=0), epochs=1)
        assert trainer.calibrate_threshold(flat, mode="effort") == 0.5

    def test_f1_mode_single_class(self):
        cnf = CNF([[1, 2]])
        flat = [make_instance(cnf, 0, 100, 100)]
        trainer = Trainer(NeuroSelect(hidden_dim=8, seed=0), epochs=1)
        assert trainer.calibrate_threshold(flat, mode="f1") == 0.5

    def test_effort_can_choose_all_or_nothing(self, instances):
        """An untrained (uninformative) model still gets an optimal
        all-or-nothing threshold: whichever of 'always default' /
        'always frequency' saves more."""
        model = NeuroSelect(hidden_dim=8, seed=1)
        trainer = Trainer(model, epochs=1)
        trainer.calibrate_threshold(instances, mode="effort")
        total_saving = sum(
            inst.comparison.default_propagations
            - inst.comparison.frequency_propagations
            for inst in instances
        )
        chosen_savings = sum(
            inst.comparison.default_propagations
            - inst.comparison.frequency_propagations
            for inst in instances
            if model.predict(inst.cnf, threshold=trainer.threshold) == 1
        )
        # Never worse than both trivial strategies.
        assert chosen_savings >= max(0, total_saving)
