"""Tests for equivalent-literal substitution (binary implication SCCs)."""

from hypothesis import given, settings, strategies as st

from repro.cnf import CNF
from repro.simplify import Preprocessor, solve_with_preprocessing, substitute_equivalences
from repro.simplify.elimination import ModelReconstructor
from repro.solver import Status, brute_force_status


def fs(*lits):
    return frozenset(lits)


class TestSubstitution:
    def test_simple_equivalence_detected(self):
        # (¬1 ∨ 2) ∧ (1 ∨ ¬2) encodes 1 <-> 2.
        rec = ModelReconstructor()
        clauses = [fs(-1, 2), fs(1, -2), fs(2, 3)]
        out, substituted, unsat = substitute_equivalences(clauses, rec)
        assert not unsat
        assert substituted == [2]
        # Variable 2 must be gone from the remaining clauses.
        assert all(2 != abs(lit) for clause in out for lit in clause)
        assert fs(1, 3) in out

    def test_negated_equivalence(self):
        # (1 ∨ 2) ∧ (¬1 ∨ ¬2) encodes 1 <-> ¬2.
        rec = ModelReconstructor()
        clauses = [fs(1, 2), fs(-1, -2), fs(2, 3)]
        out, substituted, unsat = substitute_equivalences(clauses, rec)
        assert not unsat
        assert substituted == [2]
        assert fs(-1, 3) in out

    def test_contradictory_cycle_is_unsat(self):
        # 1 -> 2, 2 -> ¬1, ¬1 -> ¬2, ¬2 -> 1: literal 1 ~ ¬1.
        clauses = [fs(-1, 2), fs(-2, -1), fs(1, -2), fs(2, 1)]
        rec = ModelReconstructor()
        _, _, unsat = substitute_equivalences(clauses, rec)
        assert unsat

    def test_no_binaries_is_noop(self):
        rec = ModelReconstructor()
        clauses = [fs(1, 2, 3)]
        out, substituted, unsat = substitute_equivalences(clauses, rec)
        assert out == clauses and not substituted and not unsat

    def test_tautologies_after_substitution_dropped(self):
        # 1 <-> 2 makes (1 ∨ ¬2) a tautology after substitution.
        rec = ModelReconstructor()
        clauses = [fs(-1, 2), fs(1, -2)]
        out, _, _ = substitute_equivalences(clauses, rec)
        assert out == []

    def test_chain_collapses_to_one_representative(self):
        # 1 <-> 2 <-> 3.
        rec = ModelReconstructor()
        clauses = [fs(-1, 2), fs(1, -2), fs(-2, 3), fs(2, -3), fs(3, 4)]
        out, substituted, unsat = substitute_equivalences(clauses, rec)
        assert not unsat
        assert set(substituted) == {2, 3}
        assert fs(1, 4) in out

    def test_reconstruction_restores_equivalent_values(self):
        rec = ModelReconstructor()
        clauses = [fs(-1, 2), fs(1, -2)]
        substitute_equivalences(clauses, rec)
        model = [None, True, None]
        rec.extend(model)
        assert model[2] is True
        model = [None, False, None]
        rec.extend(model)
        assert model[2] is False


class TestPipelineIntegration:
    def test_stats_counted(self):
        cnf = CNF([[-1, 2], [1, -2], [2, 3, 4]])
        result = Preprocessor().preprocess(cnf)
        assert result.stats.substituted_variables >= 1

    def test_flag_disables(self):
        cnf = CNF([[-1, 2], [1, -2], [2, 3, 4]])
        result = Preprocessor(
            enable_equivalences=False,
            enable_elimination=False,
            enable_strengthening=False,
            enable_probing=False,
            enable_subsumption=False,
        ).preprocess(cnf)
        assert result.stats.substituted_variables == 0

    def test_two_sat_unsat_detected(self):
        cnf = CNF([[-1, 2], [-2, -1], [1, -2], [2, 1]])
        result = Preprocessor().preprocess(cnf)
        assert result.status is Status.UNSATISFIABLE


@st.composite
def binary_heavy_cnfs(draw, max_vars=6, max_clauses=16):
    """CNFs rich in binary clauses so SCCs actually form."""
    num_vars = draw(st.integers(min_value=2, max_value=max_vars))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(st.lists(literal, min_size=2, max_size=3), max_size=max_clauses)
    )
    return CNF(clauses, num_vars=num_vars)


@settings(max_examples=100, deadline=None)
@given(binary_heavy_cnfs())
def test_property_equivalence_substitution_preserves_status(cnf):
    expected = brute_force_status(cnf)
    result = solve_with_preprocessing(cnf)
    assert result.status is expected
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
