"""Unit tests for the CNF data model."""

import pytest

from repro.cnf import CNF, Clause


class TestClause:
    def test_deduplicates_literals_preserving_order(self):
        clause = Clause([3, -1, 3, 2, -1])
        assert clause.literals == (3, -1, 2)

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            Clause([1, 0, 2])

    def test_length_and_iteration(self):
        clause = Clause([1, -2, 3])
        assert len(clause) == 3
        assert list(clause) == [1, -2, 3]
        assert -2 in clause
        assert 2 not in clause

    def test_equality_is_set_based(self):
        assert Clause([1, 2]) == Clause([2, 1])
        assert Clause([1, 2]) != Clause([1, -2])
        assert hash(Clause([1, 2])) == hash(Clause([2, 1]))

    def test_tautology_detection(self):
        assert Clause([1, -1, 2]).is_tautology()
        assert not Clause([1, 2]).is_tautology()

    def test_unit_and_empty(self):
        assert Clause([5]).is_unit()
        assert not Clause([5, 6]).is_unit()
        assert Clause([]).is_empty()

    def test_variables(self):
        assert Clause([-3, 1, -2]).variables == (3, 1, 2)

    def test_satisfied_by_partial_assignment(self):
        clause = Clause([1, -2])
        assert clause.satisfied_by([None, True, None])
        assert clause.satisfied_by([None, False, False])
        assert not clause.satisfied_by([None, False, None])
        assert not clause.satisfied_by([None, None, None])


class TestCNF:
    def test_num_vars_inferred_from_clauses(self):
        cnf = CNF([[1, -5], [2, 3]])
        assert cnf.num_vars == 5
        assert cnf.num_clauses == 2
        assert cnf.num_literals == 4

    def test_num_vars_header_can_exceed_max_literal(self):
        cnf = CNF([[1, 2]], num_vars=10)
        assert cnf.num_vars == 10

    def test_add_clause_grows_num_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -7])
        assert cnf.num_vars == 7
        assert cnf.num_clauses == 1

    def test_variables_returns_only_used(self):
        cnf = CNF([[1, 3]], num_vars=5)
        assert cnf.variables() == {1, 3}

    def test_evaluate_true_false_none(self):
        cnf = CNF([[1, 2], [-1, 2]])
        assert cnf.evaluate([None, True, True]) is True
        assert cnf.evaluate([None, True, False]) is False
        assert cnf.evaluate([None, None, None]) is None
        # One clause satisfied, other undetermined.
        assert cnf.evaluate([None, None, True]) is True

    def test_evaluate_partial_undetermined(self):
        cnf = CNF([[1, 2]])
        assert cnf.evaluate([None, False, None]) is None

    def test_check_model(self, simple_sat_cnf):
        assert simple_sat_cnf.check_model([None, True, True, True]) is False
        assert simple_sat_cnf.check_model([None, False, True, True]) is True

    def test_has_empty_clause(self):
        assert CNF([[]]).has_empty_clause()
        assert not CNF([[1]]).has_empty_clause()

    def test_simplified_drops_tautologies_and_duplicates(self):
        cnf = CNF([[1, -1], [1, 2], [2, 1], [3]])
        simplified = cnf.simplified()
        assert simplified.num_clauses == 2
        assert Clause([1, 2]) in simplified.clauses
        assert Clause([3]) in simplified.clauses

    def test_copy_is_independent(self):
        cnf = CNF([[1, 2]])
        clone = cnf.copy()
        clone.add_clause([3])
        assert cnf.num_clauses == 1
        assert clone.num_clauses == 2

    def test_repr_mentions_sizes(self):
        assert "num_vars=2" in repr(CNF([[1, 2]]))
