"""Arena-specific behavior: growth, compaction, metadata, and stress.

The flat int32 arena replaces the object-graph clause store, so these
tests target exactly the hazards that representation introduces and the
object core never had: buffer growth mid-solve, offset relocation under
compaction while watchers and reason references are live, id-indexed
metadata surviving relocation, and int32 discipline at scale.  The
audit helpers from :mod:`tests.test_solver_internals_audit` do the
structural walking; this file drives the arena into the states worth
auditing.
"""

import random

import pytest

from repro.cli import main
from repro.cnf import CNF, random_ksat, write_dimacs_file
from repro.fuzz import CampaignConfig, run_campaign
from repro.policies import FrequencyPolicy
from repro.solver import Solver, SolverConfig, Status
from repro.solver.arena import HEADER_WORDS, ArenaWatchLists, ClauseArena
from repro.solver.clause_db import ClauseDatabase
from repro.solver.reference import dpll_solve
from tests.test_solver_internals_audit import audit_arena, core_config


def planted_3sat(num_vars: int, num_clauses: int, seed: int) -> CNF:
    """Dense satisfiable 3-SAT: every clause satisfies a hidden model."""
    rng = random.Random(seed)
    plant = [rng.random() < 0.5 for _ in range(num_vars + 1)]
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        lits = [v if rng.random() < 0.5 else -v for v in variables]
        if not any((lit > 0) == plant[abs(lit)] for lit in lits):
            i = rng.randrange(3)
            var = abs(lits[i])
            lits[i] = var if plant[var] else -var
        clauses.append(lits)
    return CNF(clauses)


# ---------------------------------------------------------------------------
# bump_clause: learned-only activity invariant (both cores)
# ---------------------------------------------------------------------------


def test_arena_bump_rejects_original_clause():
    arena = ClauseArena()
    cid = arena.add_original([0, 2])
    with pytest.raises(ValueError, match="original"):
        arena.bump_clause(cid)
    assert arena.activity[cid] == 0.0


def test_object_bump_rejects_original_clause():
    db = ClauseDatabase()
    clause = db.add_original([0, 2])
    with pytest.raises(ValueError, match="original"):
        db.bump_clause(clause)
    assert clause.activity == 0.0


def test_arena_bump_overflow_rescales_learned_only():
    arena = ClauseArena()
    original = arena.add_original([0, 2, 4])
    low = arena.add_learned([1, 3], glue=2)
    high = arena.add_learned([5, 7], glue=2)
    arena.activity[low] = 1.0
    arena.activity[high] = 9e19
    arena.clause_inc = 2e19
    arena.bump_clause(high)  # 1.1e20 > 1e20 triggers the rescale
    assert arena.activity[high] == pytest.approx(1.1e20 * 1e-20)
    assert arena.activity[low] == pytest.approx(1e-20)
    assert arena.clause_inc == pytest.approx(2e19 * 1e-20)
    # Originals carry no activity, so the rescale must leave them at 0:
    # a nonzero original would silently dodge every future rescale.
    assert arena.activity[original] == 0.0
    assert arena.used[high] == 1


def test_object_bump_overflow_rescales_learned_only():
    db = ClauseDatabase()
    original = db.add_original([0, 2, 4])
    low = db.add_learned([1, 3], glue=2)
    high = db.add_learned([5, 7], glue=2)
    low.activity = 1.0
    high.activity = 9e19
    db.clause_inc = 2e19
    db.bump_clause(high)
    assert high.activity == pytest.approx(1.1e20 * 1e-20)
    assert low.activity == pytest.approx(1e-20)
    assert db.clause_inc == pytest.approx(2e19 * 1e-20)
    assert original.activity == 0.0
    assert high.used


# ---------------------------------------------------------------------------
# growth and compaction
# ---------------------------------------------------------------------------


def test_arena_grows_mid_solve():
    cnf = random_ksat(150, 645, seed=2)
    solver = Solver(cnf, config=SolverConfig(core="arena"))
    initial_words = solver.clause_db.arena_words()
    initial_ids = len(solver.clause_db.offset)
    result = solver.solve(max_conflicts=1500)
    assert result.stats.conflicts > 0
    # Learning appends blocks; the buffer and the id space both grow.
    assert solver.clause_db.arena_words() > initial_words
    assert len(solver.clause_db.offset) > initial_ids
    assert solver.clause_db.num_learned > 0
    audit_arena(solver)


def test_compaction_relocates_watchers_and_preserves_literals():
    """Unit-level compaction: watchers survive, survivors keep literals."""
    arena = ClauseArena()
    watches = ArenaWatchLists(num_vars=20, arena=arena)
    lits_by_cid = {}
    rng = random.Random(9)
    for i in range(40):
        width = rng.choice([2, 3, 5, 8])
        lits = rng.sample(range(40), width)
        cid = arena.add_original(lits)
        lits_by_cid[cid] = lits
        watches.attach(cid)
    doomed = [cid for cid in lits_by_cid if cid % 3 == 0 and len(lits_by_cid[cid]) > 2]
    for cid in doomed:
        arena.mark_garbage(cid)
    watches.detach_garbage()
    remap = arena.compact()
    watches.relocate(remap)

    for cid, lits in lits_by_cid.items():
        if cid in doomed:
            assert arena.offset[cid] == -1
            continue
        assert arena.literals(cid) == lits
        # The block header must agree with the relocated offset table.
        off = arena.offset[cid]
        assert arena.data[off - HEADER_WORDS] == cid
        assert arena.data[off - 1] == len(lits)
    # Every long watcher offset must point at a live, relocated block.
    for lit in range(len(watches.watches)):
        records = watches.watches[lit]
        for i in range(1, len(records), 2):
            off = records[i]
            cid = arena.data[off - HEADER_WORDS]
            assert arena.offset[cid] == off
            assert cid not in doomed


def test_compaction_during_solve_keeps_reasons_valid():
    cnf = random_ksat(150, 645, seed=2)
    solver = Solver(cnf, policy=FrequencyPolicy(), config=core_config("arena"))
    result = solver.solve(max_conflicts=4000)
    assert result.stats.reductions > 0  # compaction actually happened
    audit_arena(solver)  # includes reason-reference and watcher walks


def test_frequency_survives_compaction():
    """Relocation must not zero or misattribute Eq. (2) counters."""
    arena = ClauseArena()
    watches = ArenaWatchLists(num_vars=10, arena=arena)
    expected = {}
    for i in range(12):
        cid = arena.add_original([i % 8 * 2, (i + 3) % 8 * 2 + 1, 16 + (i % 4)])
        watches.attach(cid)
        arena.frequency[cid] = 100 + i
        expected[cid] = 100 + i
    doomed = {2, 5, 8}
    for cid in doomed:
        arena.mark_garbage(cid)
    watches.detach_garbage()
    watches.relocate(arena.compact())
    for cid, freq in expected.items():
        if cid not in doomed:
            assert arena.frequency[cid] == freq
            assert arena.view(cid).frequency == freq


def test_frequency_metadata_tracks_solve_with_reductions():
    cnf = random_ksat(150, 645, seed=2)
    solver = Solver(cnf, policy=FrequencyPolicy(), config=core_config("arena"))
    result = solver.solve(max_conflicts=4000)
    assert result.stats.reductions > 0
    # The frequency policy refreshed per-clause counters at least once
    # and compaction did not zero them for surviving learned clauses.
    assert any(
        solver.clause_db.frequency[cid] > 0
        for cid in solver.clause_db.live_learned_ids()
    )


# ---------------------------------------------------------------------------
# 100k-clause stress vs the DPLL reference oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("make", ["planted", "overconstrained"])
def test_100k_clause_stress_vs_dpll(make):
    if make == "planted":
        cnf = planted_3sat(26, 100_000, seed=7)
    else:
        cnf = random_ksat(26, 100_000, seed=42)
    solver = Solver(cnf, config=SolverConfig(core="arena"))
    result = solver.solve()
    truth, _ = dpll_solve(cnf)
    assert result.status is truth
    if result.status is Status.SATISFIABLE:
        assert cnf.check_model(result.model)
    assert len(solver.clause_db.offset) >= 100_000
    solver.clause_db.as_int32()  # int32 discipline holds at scale


# ---------------------------------------------------------------------------
# fuzz smoke on the arena core
# ---------------------------------------------------------------------------


def test_fuzz_smoke_200_seeds_on_arena():
    config = CampaignConfig(
        seeds=200, base_seed=11, budget=500, mutants=1, solver_core="arena"
    )
    report = run_campaign(config)
    assert report.clean, [d.summary() for d in report.discrepancies]
    assert report.solver_core == "arena"
    assert report.checks["core-agreement"] == 200


# ---------------------------------------------------------------------------
# CLI escape hatch
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("core", ["object", "arena"])
def test_cli_solver_core(core, tmp_path, capsys):
    path = tmp_path / "f.cnf"
    write_dimacs_file(CNF([[1, 2], [-2, 3], [-1, -3]]), path)
    assert main(["solve", str(path), "--solver-core", core]) == 10
    assert "s SATISFIABLE" in capsys.readouterr().out


def test_cli_fuzz_solver_core(capsys):
    code = main([
        "fuzz", "--seeds", "3", "--budget", "300", "--solver-core", "object",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "object core" in out
    assert "core-agreement=3" in out
