"""Tests for the DRAT proof checker and proof log."""

import pytest

from repro.cnf import CNF, pigeonhole
from repro.solver import ProofLog, Solver, Status, check_drat
from repro.solver.drat import DratError, parse_proof
from repro.solver.types import encode


class TestParseProof:
    def test_additions_and_deletions(self):
        steps = parse_proof("1 2 0\nd 1 2 0\n0\n")
        assert steps == [("a", (1, 2)), ("d", (1, 2)), ("a", ())]

    def test_comments_skipped(self):
        assert parse_proof("c hi\n1 0\n") == [("a", (1,))]

    def test_missing_terminator(self):
        with pytest.raises(DratError):
            parse_proof("1 2\n")

    def test_bad_token(self):
        with pytest.raises(DratError):
            parse_proof("1 x 0\n")


class TestCheckDrat:
    def test_valid_resolution_chain(self):
        cnf = CNF([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        proof = "2 0\n1 0\n0\n"
        assert check_drat(cnf, proof)

    def test_non_rup_step_rejected(self):
        cnf = CNF([[1, 2]])
        with pytest.raises(DratError, match="not RUP"):
            check_drat(cnf, "1 0\n", require_empty=False)

    def test_missing_empty_clause_rejected(self):
        cnf = CNF([[1, 2], [-1, 2]])
        with pytest.raises(DratError, match="empty clause"):
            check_drat(cnf, "2 0\n")

    def test_require_empty_false_allows_partial(self):
        cnf = CNF([[1, 2], [-1, 2]])
        assert check_drat(cnf, "2 0\n", require_empty=False)

    def test_deletion_of_unknown_clause_tolerated(self):
        cnf = CNF([[1, 2], [-1, 2]])
        assert check_drat(cnf, "d 9 9 0\n2 0\n", require_empty=False)

    def test_deleted_clause_cannot_support_later_step(self):
        cnf = CNF([[1], [-1, 2]])
        # After deleting [-1, 2], unit 2 is no longer RUP.
        with pytest.raises(DratError):
            check_drat(cnf, "d -1 2 0\n2 0\n", require_empty=False)

    def test_formula_with_existing_empty_clause(self):
        assert check_drat(CNF([[]]), "")


class TestDratEdgeCases:
    """Boundary behaviour of the checker itself (fuzz-oracle support)."""

    def test_empty_formula_empty_proof_not_unsat(self):
        # Zero clauses is trivially SAT; an empty proof must not certify UNSAT.
        with pytest.raises(DratError, match="empty clause"):
            check_drat(CNF([], num_vars=0), "")

    def test_empty_formula_empty_proof_partial_ok(self):
        assert check_drat(CNF([], num_vars=0), "", require_empty=False)

    def test_empty_formula_rejects_any_lemma(self):
        # With no clauses, nothing propagates, so no addition can be RUP.
        with pytest.raises(DratError, match="not RUP"):
            check_drat(CNF([], num_vars=1), "1 0\n", require_empty=False)

    def test_unit_only_proof(self):
        # A refutation built purely from unit lemmas.
        cnf = CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert check_drat(cnf, "1 0\n-1 0\n0\n")

    def test_unit_only_formula_bare_empty_clause(self):
        # Contradictory units: the empty clause alone is RUP.
        assert check_drat(CNF([[1], [-1]]), "0\n")

    def test_delete_never_added_clause_then_refute(self):
        # Deleting a clause that was never added is a tolerated no-op and
        # must not disturb the rest of the refutation.
        cnf = CNF([[1], [-1]])
        assert check_drat(cnf, "d 7 -8 0\n0\n")

    def test_delete_one_copy_of_duplicate_keeps_other(self):
        # The formula holds two copies of [-1, 2]; deleting one still
        # leaves the other available for propagation.
        cnf = CNF([[1], [-1, 2], [-1, 2], [-2]])
        assert check_drat(cnf, "d -1 2 0\n0\n")

    def test_already_falsified_formula_accepts_any_lemma(self):
        # Unit propagation on [[1], [-1]] conflicts immediately, so every
        # addition (even over fresh variables) is vacuously RUP.
        cnf = CNF([[1], [-1]], num_vars=5)
        assert check_drat(cnf, "5 0\n-3 4 0\n0\n")

    def test_proof_over_formula_with_existing_empty_clause(self):
        # An input empty clause already certifies UNSAT; further steps
        # are all RUP and the proof checks without deriving 0 itself.
        cnf = CNF([[1, 2], []])
        assert check_drat(cnf, "2 0\n")


class TestProofLogUnit:
    def test_text_and_lines(self):
        proof = ProofLog()
        proof.add_clause([encode(1), encode(-2)])
        proof.delete_clause([encode(1), encode(-2)])
        proof.add_empty_clause()
        assert proof.lines() == ["1 -2 0", "d 1 -2 0", "0"]
        assert proof.additions == 2
        assert proof.deletions == 1

    def test_file_backed_text_raises(self, tmp_path):
        proof = ProofLog(tmp_path / "p.drat")
        proof.add_clause([encode(1)])
        with pytest.raises(RuntimeError):
            proof.text()
        proof.close()

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "p.drat"
        with ProofLog(path) as proof:
            proof.add_empty_clause()
        assert path.read_text() == "0\n"


class TestEndToEndProofs:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_proofs_check(self, holes):
        cnf = pigeonhole(holes)
        proof = ProofLog()
        result = Solver(cnf, proof=proof).solve()
        assert result.status is Status.UNSATISFIABLE
        assert check_drat(cnf, proof.text())


class TestTrimProof:
    def test_trimmed_proof_still_checks(self):
        from repro.cnf import pigeonhole
        from repro.solver.drat import trim_proof

        cnf = pigeonhole(4)
        proof = ProofLog()
        result = Solver(cnf, proof=proof).solve()
        assert result.status is Status.UNSATISFIABLE
        trimmed = trim_proof(cnf, proof.text())
        assert check_drat(cnf, trimmed)
        assert len(trimmed.splitlines()) <= proof.additions

    def test_irrelevant_additions_dropped(self):
        from repro.solver.drat import trim_proof

        cnf = CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        # "2" is a valid RUP lemma but unnecessary: the refutation below
        # derives units 1 and -1 directly from the original clauses.
        proof = "2 0\n1 0\n-1 0\n0\n"
        assert check_drat(cnf, proof)
        trimmed = trim_proof(cnf, proof)
        assert "2 0" not in trimmed.splitlines()
        assert check_drat(cnf, trimmed)

    def test_invalid_proof_rejected(self):
        from repro.solver.drat import trim_proof

        cnf = CNF([[1, 2]])
        with pytest.raises(DratError):
            trim_proof(cnf, "1 0\n")

    def test_deletions_ignored(self):
        from repro.solver.drat import trim_proof

        cnf = CNF([[1], [-1, 2], [-2]])
        proof = "2 0\nd 2 0\n0\n"
        trimmed = trim_proof(cnf, proof)
        assert "d " not in trimmed
        assert check_drat(cnf, trimmed)
