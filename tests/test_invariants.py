"""Cross-cutting invariants tying subsystems together."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.graph import BipartiteGraph
from repro.nn import Tensor
from repro.policies import DefaultPolicy, FrequencyPolicy
from repro.solver import Solver, Status
from repro.solver.clause_db import SolverClause


class TestSolverAccountingInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_propagations_equal_lifetime_frequency_sum(self, seed):
        """stats.propagations must equal the per-variable counter total."""
        cnf = random_ksat(40, 170, seed=seed)
        solver = Solver(cnf)
        result = solver.solve()
        assert result.stats.propagations == sum(
            solver.propagator.lifetime_frequency
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_decisions_plus_propagations_cover_trail_on_sat(self, seed):
        cnf = random_ksat(30, 100, seed=seed)  # under-constrained: SAT
        solver = Solver(cnf)
        result = solver.solve()
        if result.status is Status.SATISFIABLE:
            # Every assigned variable got there by decision, propagation,
            # or a level-0 unit from the input; there are no other routes.
            assigned = solver.trail.num_assigned()
            level0_units = sum(
                1 for c in cnf.clauses if len(c) == 1
            )
            assert assigned <= (
                result.stats.decisions + result.stats.propagations + level0_units
            )

    def test_learned_clause_count_matches_db_plus_deleted_and_units(self):
        from repro.selection.labeling import default_labeling_config

        cnf = random_ksat(120, 510, seed=3)
        solver = Solver(cnf, config=default_labeling_config())
        result = solver.solve(max_conflicts=3000)
        stats = result.stats
        live_learned = solver.clause_db.num_learned
        # learned = live + deleted + unit-learned (never enter the DB).
        assert stats.learned_clauses >= live_learned + stats.deleted_clauses
        # Every conflict learns exactly one clause, except a final
        # level-0 conflict, which ends the search instead.
        final_conflict = 1 if result.status is Status.UNSATISFIABLE else 0
        assert stats.conflicts == stats.learned_clauses + final_conflict


class TestGraphInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_edges_equal_literal_occurrences(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(3, 12)
        m = rng.randint(1, 30)
        cnf = random_ksat(n, m, k=min(3, n), seed=seed)
        graph = BipartiteGraph(cnf)
        assert graph.num_edges == cnf.num_literals
        assert graph.edge_weight.sum() == sum(
            1 if lit > 0 else -1 for c in cnf.clauses for lit in c.literals
        )

    def test_degree_sums_match_edges(self):
        cnf = random_ksat(10, 30, seed=1)
        graph = BipartiteGraph(cnf)
        # Degrees are floored at 1 for isolated nodes; with no isolated
        # nodes here the sums match exactly.
        assert graph.var_degree.sum() >= graph.num_edges
        assert graph.clause_degree.sum() == graph.num_edges


class TestPolicyScoreInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=2, max_value=30),
    )
    def test_default_policy_total_order_matches_lexicographic(
        self, glue_a, glue_b, size_a, size_b
    ):
        policy = DefaultPolicy()
        a = SolverClause(list(range(2, 2 + 2 * size_a, 2)), learned=True, glue=glue_a)
        b = SolverClause(list(range(2, 2 + 2 * size_b, 2)), learned=True, glue=glue_b)
        score_a = policy.score(a, [], 0)
        score_b = policy.score(b, [], 0)
        # Lexicographic on (glue asc, size asc): lower is better = higher score.
        expected = (glue_a, size_a) < (glue_b, size_b)
        if (glue_a, size_a) == (glue_b, size_b):
            assert score_a == score_b
        else:
            assert (score_a > score_b) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=23))
    def test_frequency_only_breaks_ties(self, freq_count):
        """Frequency differences can never override a glue difference."""
        policy = FrequencyPolicy()
        hot_vars = list(range(1, freq_count + 2))
        frequency = [0] * 40
        for v in hot_vars:
            frequency[v] = 100
        hot = SolverClause([2 * v for v in hot_vars[:3]] + [60, 62], learned=True, glue=5)
        cold = SolverClause([50, 52, 54, 56, 58], learned=True, glue=4)
        assert policy.score(cold, frequency, 100) > policy.score(hot, frequency, 100)


class TestTensorNumpyParity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-3, max_value=3, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    def test_pointwise_ops_match_numpy(self, values):
        x = np.asarray(values)
        t = Tensor(x)
        np.testing.assert_allclose(t.tanh().data, np.tanh(x))
        np.testing.assert_allclose(t.exp().data, np.exp(x))
        np.testing.assert_allclose(
            t.sigmoid().data, 1.0 / (1.0 + np.exp(-x)), atol=1e-12
        )
        np.testing.assert_allclose(t.relu().data, np.maximum(x, 0.0))
