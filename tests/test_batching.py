"""Tests for graph batching and segmented linear attention."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.graph import BatchedBipartiteGraph, BipartiteGraph, batch_graphs
from repro.models import LinearAttention, NeuroSelect
from repro.nn import Adam, Tensor, bce_with_logits

RNG = np.random.default_rng(3)


def graphs_of_sizes(*sizes, seed=0):
    return [
        BipartiteGraph(random_ksat(n, 3 * n, seed=seed + i))
        for i, n in enumerate(sizes)
    ]


class TestBatchedBipartiteGraph:
    def test_counts_are_sums(self):
        graphs = graphs_of_sizes(5, 8, 13)
        batch = batch_graphs(graphs)
        assert batch.num_vars == 26
        assert batch.num_clauses == sum(g.num_clauses for g in graphs)
        assert batch.num_edges == sum(g.num_edges for g in graphs)
        assert batch.num_graphs == 3

    def test_edges_offset_into_member_ranges(self):
        graphs = graphs_of_sizes(5, 8)
        batch = batch_graphs(graphs)
        # Second member's edges reference variables 5..12 (0-based).
        second = slice(graphs[0].num_edges, None)
        assert batch.edge_var[second].min() >= 5
        assert batch.edge_var[second].max() < 13

    def test_graph_index_segments(self):
        batch = batch_graphs(graphs_of_sizes(4, 6))
        assert list(batch.var_graph_index[:4]) == [0] * 4
        assert list(batch.var_graph_index[4:]) == [1] * 6
        assert list(batch.var_counts) == [4.0, 6.0]

    def test_var_slice(self):
        batch = batch_graphs(graphs_of_sizes(4, 6))
        assert batch.var_slice(1) == slice(4, 10)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchedBipartiteGraph([])

    def test_edges_never_cross_members(self):
        batch = batch_graphs(graphs_of_sizes(4, 6, 5))
        for var_idx, clause_idx in zip(batch.edge_var, batch.edge_clause):
            assert (
                batch.var_graph_index[var_idx]
                == batch.clause_graph_index[clause_idx]
            )


class TestSegmentedLinearAttention:
    def test_matches_per_segment_plain_attention(self):
        attn = LinearAttention(dim=6, rng=np.random.default_rng(1))
        z1 = RNG.normal(size=(5, 6))
        z2 = RNG.normal(size=(9, 6))
        merged = np.vstack([z1, z2])
        segments = np.array([0] * 5 + [1] * 9)
        counts = np.array([5.0, 9.0])

        batched = attn(Tensor(merged), segments=segments, counts=counts).data
        expect1 = attn(Tensor(z1)).data
        expect2 = attn(Tensor(z2)).data
        np.testing.assert_allclose(batched[:5], expect1, atol=1e-12)
        np.testing.assert_allclose(batched[5:], expect2, atol=1e-12)

    def test_segments_do_not_leak(self):
        """Changing one segment's rows must not change the other's output."""
        attn = LinearAttention(dim=4, rng=np.random.default_rng(2))
        z1 = RNG.normal(size=(4, 4))
        z2a = RNG.normal(size=(6, 4))
        z2b = RNG.normal(size=(6, 4))
        segments = np.array([0] * 4 + [1] * 6)
        counts = np.array([4.0, 6.0])
        out_a = attn(Tensor(np.vstack([z1, z2a])), segments=segments, counts=counts)
        out_b = attn(Tensor(np.vstack([z1, z2b])), segments=segments, counts=counts)
        np.testing.assert_allclose(out_a.data[:4], out_b.data[:4], atol=1e-12)

    def test_counts_required(self):
        attn = LinearAttention(dim=4)
        with pytest.raises(ValueError):
            attn(Tensor(RNG.normal(size=(3, 4))), segments=np.zeros(3, dtype=np.int64))

    def test_gradients_flow_through_segmented_path(self):
        attn = LinearAttention(dim=4, rng=np.random.default_rng(0))
        z = Tensor(RNG.normal(size=(7, 4)), requires_grad=True)
        segments = np.array([0, 0, 0, 1, 1, 1, 1])
        out = attn(z, segments=segments, counts=np.array([3.0, 4.0]))
        out.sum().backward()
        assert z.grad is not None
        assert all(p.grad is not None for p in attn.parameters())


class TestBatchedNeuroSelect:
    def test_forward_batch_equals_per_graph(self):
        model = NeuroSelect(hidden_dim=8, seed=0)
        graphs = graphs_of_sizes(6, 11, 17, seed=4)
        batch = batch_graphs(graphs)
        batched = model.forward_batch(batch).data.ravel()
        single = np.array([model.forward(g).data.ravel()[0] for g in graphs])
        np.testing.assert_allclose(batched, single, atol=1e-12)

    def test_predict_proba_batch(self):
        model = NeuroSelect(hidden_dim=8, seed=0)
        graphs = graphs_of_sizes(6, 11, seed=1)
        probs = model.predict_proba_batch(batch_graphs(graphs))
        assert len(probs) == 2
        assert probs[0] == pytest.approx(model.predict_proba(graphs[0]))

    def test_non_mean_readout_rejected(self):
        model = NeuroSelect(hidden_dim=8, seed=0, readout="max")
        batch = batch_graphs(graphs_of_sizes(5, 5))
        with pytest.raises(NotImplementedError):
            model.forward_batch(batch)

    def test_batched_training_step(self):
        model = NeuroSelect(hidden_dim=8, seed=0)
        batch = batch_graphs(graphs_of_sizes(6, 9, seed=2))
        opt = Adam(model.parameters(), lr=1e-3)
        logits = model.forward_batch(batch)
        loss = bce_with_logits(logits[0], 0.0) + bce_with_logits(logits[1], 1.0)
        loss.backward()
        opt.step()
        assert all(p.grad is not None for p in model.parameters())


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=4, max_value=12), min_size=1, max_size=4),
    st.integers(min_value=0, max_value=100),
)
def test_property_batching_invariant(sizes, seed):
    """Batched logits equal per-graph logits for any member mix."""
    model = NeuroSelect(hidden_dim=4, seed=1)
    graphs = [
        BipartiteGraph(random_ksat(n, 3 * n, seed=seed + i))
        for i, n in enumerate(sizes)
    ]
    batch = batch_graphs(graphs)
    batched = model.forward_batch(batch).data.ravel()
    single = np.array([model.forward(g).data.ravel()[0] for g in graphs])
    np.testing.assert_allclose(batched, single, atol=1e-10)
