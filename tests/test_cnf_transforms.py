"""Tests for CNF transformations and solver metamorphic properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF, random_ksat
from repro.cnf.transforms import (
    augment,
    compact_variables,
    flip_polarity,
    map_model_back,
    rename_variables,
    shuffle_clauses,
)
from repro.solver import Solver, Status, brute_force_status


class TestShuffle:
    def test_same_clause_multiset(self):
        cnf = random_ksat(10, 30, seed=0)
        shuffled = shuffle_clauses(cnf, seed=1)
        assert sorted(map(sorted, (c.literals for c in cnf.clauses))) == sorted(
            map(sorted, (c.literals for c in shuffled.clauses))
        )

    def test_order_changes(self):
        cnf = random_ksat(10, 30, seed=0)
        shuffled = shuffle_clauses(cnf, seed=1)
        assert [c.literals for c in cnf.clauses] != [
            c.literals for c in shuffled.clauses
        ]


class TestRename:
    def test_explicit_mapping(self):
        cnf = CNF([[1, -2]])
        renamed = rename_variables(cnf, mapping={1: 2, 2: 1})
        assert renamed.clauses[0].literals == (2, -1)

    def test_random_mapping_is_permutation(self):
        cnf = random_ksat(12, 30, seed=0)
        renamed = rename_variables(cnf, seed=3)
        assert renamed.variables() <= set(range(1, 13))
        assert renamed.num_literals == cnf.num_literals

    def test_non_permutation_rejected(self):
        cnf = CNF([[1, 2]])
        with pytest.raises(ValueError):
            rename_variables(cnf, mapping={1: 1, 2: 1})

    def test_model_maps_back(self):
        cnf = random_ksat(8, 24, seed=2)
        mapping = {v: (v % 8) + 1 for v in range(1, 9)}
        renamed = rename_variables(cnf, mapping=mapping)
        result = Solver(renamed).solve()
        if result.status is Status.SATISFIABLE:
            original_model = map_model_back(result.model, mapping)
            assert cnf.check_model(original_model)


class TestFlip:
    def test_explicit_flip(self):
        cnf = CNF([[1, -2], [2]])
        flipped = flip_polarity(cnf, variables=[2])
        assert flipped.clauses[0].literals == (1, 2)
        assert flipped.clauses[1].literals == (-2,)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            flip_polarity(CNF([[1]]), variables=[5])

    def test_flip_twice_is_identity(self):
        cnf = random_ksat(8, 20, seed=1)
        twice = flip_polarity(flip_polarity(cnf, variables=[1, 3]), variables=[1, 3])
        assert [c.literals for c in twice.clauses] == [
            c.literals for c in cnf.clauses
        ]


class TestCompact:
    def test_gaps_removed(self):
        cnf = CNF([[2, -9], [9, 40]])
        compacted = compact_variables(cnf)
        assert compacted.num_vars == 3
        assert compacted.variables() == {1, 2, 3}

    def test_status_preserved(self):
        cnf = CNF([[5], [-5]])
        assert brute_force_status(compact_variables(cnf)) is Status.UNSATISFIABLE


@st.composite
def small_cnfs(draw, max_vars=7, max_clauses=16):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(st.lists(literal, min_size=1, max_size=4), max_size=max_clauses)
    )
    return CNF(clauses, num_vars=num_vars)


@settings(max_examples=60, deadline=None)
@given(small_cnfs(), st.integers(min_value=0, max_value=1000))
def test_property_augmentation_preserves_status(cnf, seed):
    """Metamorphic: solver status is invariant under all CNF symmetries."""
    original = brute_force_status(cnf)
    transformed = augment(cnf, seed=seed)
    assert Solver(transformed).solve().status is original


@settings(max_examples=40, deadline=None)
@given(small_cnfs(), st.integers(min_value=0, max_value=1000))
def test_property_rename_roundtrip_model(cnf, seed):
    renamed = rename_variables(cnf, seed=seed)
    result = Solver(renamed).solve()
    assert result.status is brute_force_status(cnf)
