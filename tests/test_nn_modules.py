"""Tests for layers, optimizers, losses, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    LayerNorm,
    Linear,
    Module,
    SGD,
    Sequential,
    Tensor,
    bce_loss,
    bce_with_logits,
    load_module,
    mse_loss,
    relu,
    save_module,
    sigmoid,
)

RNG = np.random.default_rng(7)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_glorot_bound(self):
        layer = Linear(100, 100, rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound

    def test_parameters_require_grad(self):
        layer = Linear(2, 2)
        assert all(p.requires_grad for p in layer.parameters())


class TestMLP:
    def test_forward_and_depth(self):
        mlp = MLP([4, 8, 8, 1], rng=RNG)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(RNG.normal(size=(2, 4)))).shape == (2, 1)

    def test_rejects_single_dim(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_activation_between_but_not_after(self):
        mlp = MLP([2, 2, 1], rng=RNG)
        # Output can be negative (no final ReLU).
        outs = [
            mlp(Tensor(RNG.normal(size=(1, 2)))).data.ravel()[0] for _ in range(50)
        ]
        assert min(outs) < 0 or max(outs) <= 0  # at least sometimes negative


class TestLayerNormAndSequential:
    def test_layernorm_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(RNG.normal(loc=5.0, scale=3.0, size=(4, 8)))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_sequential_composition(self):
        seq = Sequential(Linear(3, 5, rng=RNG), relu, Linear(5, 1, rng=RNG), sigmoid)
        out = seq(Tensor(RNG.normal(size=(2, 3))))
        assert out.shape == (2, 1)
        assert np.all((out.data > 0) & (out.data < 1))


class TestModule:
    def test_nested_parameter_discovery(self):
        class Net(Module):
            def __init__(self):
                self.branches = [Linear(2, 2), Linear(2, 2)]
                self.head = MLP([2, 1])
                self.scalar = Tensor(np.zeros(1), requires_grad=True)

        net = Net()
        # 2 linears (w+b each) + MLP single layer (w+b) + scalar = 7 tensors.
        assert len(net.parameters()) == 7
        assert net.num_parameters() == 2 * (4 + 2) + (2 + 1) + 1

    def test_zero_grad_clears(self):
        layer = Linear(2, 1)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_round_trip(self):
        a = MLP([3, 4, 1], rng=np.random.default_rng(1))
        b = MLP([3, 4, 1], rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(RNG.normal(size=(2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_shape_mismatch_rejected(self):
        a = MLP([3, 4, 1])
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((99, 99))
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_state_dict_key_mismatch_rejected(self):
        a = MLP([3, 4, 1])
        with pytest.raises(ValueError, match="state mismatch"):
            a.load_state_dict({"bogus": np.zeros(1)})


class TestOptimizers:
    @staticmethod
    def quadratic_loss(param):
        return ((param - 3.0) * (param - 3.0)).sum()

    def test_sgd_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            self.quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                self.quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            self.quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_adam_skips_params_without_grad(self):
        p = Tensor(np.ones(1), requires_grad=True)
        q = Tensor(np.ones(1), requires_grad=True)
        opt = Adam([p, q], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        np.testing.assert_allclose(q.data, 1.0)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.full(1, 10.0), requires_grad=True)
        opt = Adam([p], lr=0.5, weight_decay=1.0)
        for _ in range(100):
            opt.zero_grad()
            # No data loss at all: pure decay.
            p.grad = np.zeros_like(p.data)
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([])
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([p], lr=0.0)


class TestLosses:
    def test_bce_with_logits_matches_prob_form(self):
        logit = Tensor(np.array([[0.7]]), requires_grad=True)
        a = bce_with_logits(logit, 1.0)
        b = bce_loss(logit.sigmoid(), 1.0)
        assert a.item() == pytest.approx(b.item(), abs=1e-9)

    def test_bce_with_logits_extreme_values_stable(self):
        for x in (-1000.0, 1000.0):
            loss = bce_with_logits(Tensor(np.array([x])), 1.0)
            assert np.isfinite(loss.item())

    def test_bce_loss_clamps_at_zero(self):
        loss = bce_loss(Tensor(np.array([0.0])), 0.0)
        assert np.isfinite(loss.item())

    def test_bce_gradient_direction(self):
        logit = Tensor(np.array([0.0]), requires_grad=True)
        bce_with_logits(logit, 1.0).backward()
        assert logit.grad[0] < 0  # push logit up towards label 1

    def test_bce_rejects_bad_target(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor(np.zeros(1)), 2.0)
        with pytest.raises(ValueError):
            bce_loss(Tensor(np.full(1, 0.5)), -1.0)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        model = MLP([3, 5, 1], rng=np.random.default_rng(3))
        path = tmp_path / "model.npz"
        save_module(model, path)
        clone = MLP([3, 5, 1], rng=np.random.default_rng(99))
        load_module(clone, path)
        x = Tensor(RNG.normal(size=(2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        model = MLP([3, 5, 1])
        path = tmp_path / "model.npz"
        save_module(model, path)
        with pytest.raises(ValueError):
            load_module(MLP([3, 6, 1]), path)


class TestMetadataRoundTrip:
    def test_decision_threshold_travels_with_weights(self, tmp_path):
        model = MLP([3, 4, 1], rng=np.random.default_rng(0))
        model.decision_threshold = 0.37
        path = tmp_path / "m.npz"
        save_module(model, path)
        clone = MLP([3, 4, 1], rng=np.random.default_rng(9))
        load_module(clone, path)
        assert clone.decision_threshold == pytest.approx(0.37)

    def test_no_metadata_is_fine(self, tmp_path):
        model = MLP([3, 4, 1])
        path = tmp_path / "m.npz"
        save_module(model, path)
        clone = MLP([3, 4, 1])
        load_module(clone, path)
        assert not hasattr(clone, "decision_threshold")
