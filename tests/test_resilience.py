"""Resilience layer: breaker state machine, degraded inference, deadlines.

What must hold, each claim tested here:

* the circuit breaker walks every edge of CLOSED → OPEN → HALF_OPEN
  correctly — opening at the failure-rate threshold (but never before
  ``min_samples``), admitting only ``half_open_probes`` probes after
  the cooldown, reopening on a failed probe, closing after
  ``recovery_successes`` clean ones, and treating slow successes as
  failures — all on an injected clock, with zero sleeps;
* a raising, hanging, or breaker-blocked forward pass degrades every
  batch member to the default policy (``degraded=true``) instead of
  hanging futures or killing the batcher loop;
* deadlines propagate: an infeasible deadline is shed at admission
  with ``Retry-After``, an admitted one clamps the conflict budget and
  the supervisor wall budget, and one that expires in the queue
  answers TIMEOUT without touching a worker;
* a draining service completes what it admitted and answers new
  submissions 503;
* the client retries 429s and connection resets with capped,
  seeded-jitter backoff, and a retried solve resumes from the journal
  instead of re-solving.

Tests drive the event loop with ``asyncio.run`` (no pytest-asyncio
dependency).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cnf import random_ksat, to_dimacs
from repro.models import NeuroSelect
from repro.serve import (
    AdmissionError,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    InferenceBatcher,
    ServeClient,
    ServeConfig,
    ServeReply,
    SolveService,
)
from repro.serve.http import bound_address, start_service
from repro.serve.resilience import clamp_conflicts_to_deadline
from repro.solver import Status


def _model() -> NeuroSelect:
    return NeuroSelect(hidden_dim=8, seed=0)


class _Clock:
    """Manually advanced monotonic clock for sleep-free breaker tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(**overrides) -> CircuitBreaker:
    defaults = dict(
        window=8,
        min_samples=4,
        failure_threshold=0.5,
        cooldown_seconds=10.0,
        half_open_probes=1,
        recovery_successes=2,
    )
    defaults.update(overrides)
    clock = _Clock()
    breaker = CircuitBreaker(BreakerConfig(**defaults), clock=clock)
    breaker.test_clock = clock  # type: ignore[attr-defined]
    return breaker


# ---------------------------------------------------------------------------
# breaker state machine


def test_breaker_stays_closed_below_min_samples():
    breaker = _breaker()
    for _ in range(3):  # 100% failure, but only 3 of 4 required samples
        assert breaker.allow()
        breaker.record_failure(reason="boom")
    assert breaker.state is BreakerState.CLOSED
    assert breaker.failure_rate() == 1.0


def test_breaker_opens_at_threshold_and_short_circuits():
    breaker = _breaker()
    for _ in range(2):
        breaker.record_success()
    for _ in range(2):
        breaker.record_failure(reason="boom")
    assert breaker.state is BreakerState.OPEN  # 2/4 >= 0.5
    assert not breaker.allow()
    assert breaker.short_circuits == 1
    assert breaker.transitions[-1][0:2] == ("CLOSED", "OPEN")


def test_breaker_ignores_failures_below_threshold():
    breaker = _breaker()
    for _ in range(3):
        breaker.record_success()
    breaker.record_failure(reason="boom")  # 1/4 < 0.5
    assert breaker.state is BreakerState.CLOSED


def test_breaker_half_open_after_cooldown_bounds_probes():
    breaker = _breaker(half_open_probes=1)
    for _ in range(4):
        breaker.record_failure(reason="boom")
    assert breaker.state is BreakerState.OPEN
    breaker.test_clock.advance(9.9)
    assert not breaker.allow()  # still cooling down
    breaker.test_clock.advance(0.2)
    assert breaker.allow()      # first probe admitted
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow()  # probe budget exhausted
    assert breaker.short_circuits == 2


def test_breaker_recovers_after_enough_probe_successes():
    breaker = _breaker(recovery_successes=2)
    for _ in range(4):
        breaker.record_failure(reason="boom")
    breaker.test_clock.advance(10.0)
    for _ in range(2):
        assert breaker.allow()
        breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.failure_rate() == 0.0  # window cleared on recovery
    edges = [(t[0], t[1]) for t in breaker.transitions]
    assert edges == [
        ("CLOSED", "OPEN"),
        ("OPEN", "HALF_OPEN"),
        ("HALF_OPEN", "CLOSED"),
    ]


def test_breaker_failed_probe_reopens():
    breaker = _breaker()
    for _ in range(4):
        breaker.record_failure(reason="boom")
    breaker.test_clock.advance(10.0)
    assert breaker.allow()
    breaker.record_failure(reason="still broken")
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()  # a fresh cooldown applies
    breaker.test_clock.advance(10.0)
    assert breaker.allow()      # and probing resumes after it
    assert breaker.state is BreakerState.HALF_OPEN


def test_breaker_slow_success_counts_as_failure():
    breaker = _breaker(slow_seconds=0.1, min_samples=4)
    for _ in range(4):
        breaker.record_success(seconds=0.5)
    assert breaker.state is BreakerState.OPEN
    assert "slow" in breaker.transitions[-1][2]


def test_breaker_straggler_failure_while_open_is_ignored():
    breaker = _breaker()
    for _ in range(4):
        breaker.record_failure(reason="boom")
    transitions = len(breaker.transitions)
    breaker.record_failure(reason="late straggler")
    assert breaker.state is BreakerState.OPEN
    assert len(breaker.transitions) == transitions


def test_breaker_stats_snapshot():
    breaker = _breaker()
    breaker.record_failure(reason="boom")
    stats = breaker.stats()
    assert stats["state"] == "CLOSED"
    assert stats["samples"] == 1
    assert stats["failure_rate"] == 1.0


def test_breaker_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(window=0)
    with pytest.raises(ValueError):
        BreakerConfig(min_samples=9, window=8)
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0.0)
    with pytest.raises(ValueError):
        BreakerConfig(half_open_probes=0)
    with pytest.raises(ValueError):
        BreakerConfig(slow_seconds=-1.0)


def test_clamp_conflicts_to_deadline():
    assert clamp_conflicts_to_deadline(100_000, 2.0, 25_000) == 50_000
    assert clamp_conflicts_to_deadline(100_000, 10.0, 25_000) == 100_000
    assert clamp_conflicts_to_deadline(100_000, 0.0, 25_000) == 1
    assert clamp_conflicts_to_deadline(100_000, -1.0, 25_000) == 1
    assert clamp_conflicts_to_deadline(100_000, 1e-9, 25_000) == 1


# ---------------------------------------------------------------------------
# batcher failure contract


class _RaisingModel:
    decision_threshold = 0.5

    def __init__(self) -> None:
        self.calls = 0

    def predict_proba_batch(self, batch):
        self.calls += 1
        raise RuntimeError("synthetic inference crash")


class _StallingModel:
    decision_threshold = 0.5

    def predict_proba_batch(self, batch):
        import time

        time.sleep(0.5)
        raise AssertionError("timed-out result must be discarded")


def test_raising_model_degrades_every_batch_member():
    async def scenario():
        batcher = InferenceBatcher(
            _RaisingModel(), max_batch=3, flush_window=0.02
        )
        await batcher.start()
        choices = await asyncio.gather(*[
            batcher.submit(random_ksat(10 + i, 30, seed=i))
            for i in range(3)
        ])
        await batcher.stop()
        return batcher, choices

    batcher, choices = asyncio.run(scenario())
    assert len(choices) == 3
    for choice in choices:
        assert choice.policy == "default"
        assert not choice.used_model
        assert choice.degraded
    assert batcher.failures == 1
    assert batcher.degraded == 3
    assert batcher.served == 3


def test_inference_timeout_degrades_and_loop_survives():
    async def scenario():
        batcher = InferenceBatcher(
            _StallingModel(),
            max_batch=2,
            flush_window=0.02,
            inference_timeout=0.05,
        )
        await batcher.start()
        first = await asyncio.gather(*[
            batcher.submit(random_ksat(10, 30, seed=i)) for i in range(2)
        ])
        second = await asyncio.gather(*[
            batcher.submit(random_ksat(11, 33, seed=i)) for i in range(2)
        ])
        await batcher.stop()
        return batcher, first + second

    batcher, choices = asyncio.run(scenario())
    assert all(c.degraded and c.policy == "default" for c in choices)
    assert batcher.failures == 2  # the loop survived the first timeout


def test_open_breaker_bypasses_model_entirely():
    async def scenario():
        model = _RaisingModel()
        breaker = CircuitBreaker(
            BreakerConfig(min_samples=1, failure_threshold=1.0,
                          cooldown_seconds=60.0)
        )
        breaker.record_failure(reason="pre-tripped")
        assert breaker.state is BreakerState.OPEN
        batcher = InferenceBatcher(
            model, max_batch=2, flush_window=0.02, breaker=breaker
        )
        await batcher.start()
        choices = await asyncio.gather(*[
            batcher.submit(random_ksat(10, 30, seed=i)) for i in range(2)
        ])
        await batcher.stop()
        return model, breaker, choices

    model, breaker, choices = asyncio.run(scenario())
    assert model.calls == 0  # open breaker short-circuits the forward pass
    assert breaker.short_circuits >= 1
    assert all(c.degraded and c.policy == "default" for c in choices)


def test_breaker_recovers_through_batcher_traffic():
    """End to end: failures trip the breaker, clean probes close it."""

    class _FlakyModel:
        decision_threshold = 0.5

        def __init__(self, real, fail_first: int) -> None:
            self.real = real
            self.fail_first = fail_first
            self.calls = 0

        def predict_proba_batch(self, batch):
            self.calls += 1
            if self.calls <= self.fail_first:
                raise RuntimeError("transient inference crash")
            return self.real.predict_proba_batch(batch)

    async def scenario():
        breaker = CircuitBreaker(
            BreakerConfig(min_samples=1, failure_threshold=1.0,
                          cooldown_seconds=0.05, recovery_successes=1)
        )
        batcher = InferenceBatcher(
            _FlakyModel(_model(), fail_first=1),
            max_batch=1,
            flush_window=0.01,
            breaker=breaker,
        )
        await batcher.start()
        degraded = await batcher.submit(random_ksat(10, 30, seed=0))
        await asyncio.sleep(0.1)  # let the cooldown elapse
        recovered = await batcher.submit(random_ksat(10, 30, seed=1))
        await batcher.stop()
        return breaker, degraded, recovered

    breaker, degraded, recovered = asyncio.run(scenario())
    assert degraded.degraded
    assert recovered.used_model and not recovered.degraded
    edges = [(t[0], t[1]) for t in breaker.transitions]
    assert edges == [
        ("CLOSED", "OPEN"),
        ("OPEN", "HALF_OPEN"),
        ("HALF_OPEN", "CLOSED"),
    ]


# ---------------------------------------------------------------------------
# deadline propagation


def test_infeasible_deadline_is_shed_at_admission():
    async def scenario():
        service = SolveService(None, ServeConfig(default_max_conflicts=500))
        await service.start()
        service._wait_ewma = 2.0  # pretend the queue is slow
        try:
            service.submit(random_ksat(10, 30, seed=0), deadline_seconds=1.0)
        except AdmissionError as exc:
            shed = exc
        else:
            shed = None
        try:
            service.submit(random_ksat(10, 30, seed=0), deadline_seconds=0.0)
        except AdmissionError as exc:
            nonpositive = exc
        else:
            nonpositive = None
        stats = service.stats()
        await service.stop(drain=True)
        return shed, nonpositive, stats

    shed, nonpositive, stats = asyncio.run(scenario())
    assert shed is not None and shed.http_code == 429
    assert shed.reason == "deadline-infeasible"
    assert shed.retry_after >= 1.0
    assert nonpositive is not None
    assert stats["shed"] == 2
    assert stats["rejected"] == 2


def test_deadline_clamps_conflict_and_wall_budgets():
    async def scenario():
        service = SolveService(
            None,
            ServeConfig(
                default_max_conflicts=1_000_000,
                max_conflicts_cap=1_000_000,
                conflicts_per_second=1000.0,
            ),
        )
        await service.start()
        request = service.submit(
            random_ksat(10, 30, seed=0), deadline_seconds=30.0
        )
        task = service._task_for(request)
        await service.wait(request.id)
        await service.stop(drain=True)
        return request, task

    request, task = asyncio.run(scenario())
    # ~30s at 1000 conflicts/s: far below the million-conflict default.
    assert task.max_conflicts <= 30_000
    assert task.wall_budget_seconds is not None
    assert task.wall_budget_seconds <= 30.0
    assert request.outcome is not None


def test_expired_deadline_answers_timeout_without_solving():
    async def scenario():
        service = SolveService(None, ServeConfig(default_max_conflicts=500))
        await service.start()
        request = service.submit(
            random_ksat(10, 30, seed=0), deadline_seconds=1e-9
        )
        await service.wait(request.id)
        stats = service.stats()
        await service.stop(drain=True)
        return request, stats

    request, stats = asyncio.run(scenario())
    assert request.outcome.status is Status.TIMEOUT
    assert request.outcome.attempts == 0  # never reached a worker
    assert "expired" in request.outcome.error
    assert stats["deadline_missed"] >= 0  # histogram path exercised
    assert request.http_code() == 504


def test_wall_budget_stays_out_of_cache_key():
    from repro.parallel import SolveTask
    from repro.solver import SolverConfig

    cnf = random_ksat(10, 30, seed=0)
    plain = SolveTask(cnf=cnf, policy="default", config=SolverConfig(),
                      max_conflicts=100)
    budgeted = SolveTask(cnf=cnf, policy="default", config=SolverConfig(),
                         max_conflicts=100, wall_budget_seconds=0.5)
    assert plain.cache_key() == budgeted.cache_key()


# ---------------------------------------------------------------------------
# graceful drain under load


def test_drain_completes_admitted_and_rejects_new_with_503():
    async def scenario():
        service = SolveService(
            _model(),
            ServeConfig(max_batch=4, flush_window=0.02,
                        default_max_conflicts=500),
        )
        server, _ = await start_service(service)
        host, port = bound_address(server)
        client = ServeClient(host, port)
        inflight = [
            asyncio.ensure_future(client.solve(
                to_dimacs(random_ksat(10 + i, 30, seed=i)),
                max_conflicts=500,
            ))
            for i in range(4)
        ]
        while service.total_requests < 4:  # submissions must be admitted
            await asyncio.sleep(0.001)
        drain = asyncio.ensure_future(service.stop(drain=True))
        while service.accepting:
            await asyncio.sleep(0.001)
        rejected = await client.solve(
            to_dimacs(random_ksat(9, 27, seed=99)), max_conflicts=500
        )
        replies = await asyncio.gather(*inflight)
        await drain
        server.close()
        await server.wait_closed()
        return replies, rejected, service.stats()

    replies, rejected, stats = asyncio.run(scenario())
    assert rejected.code == 503
    assert rejected.retry_after is not None
    assert rejected.json["reason"] == "not-accepting"
    assert len(replies) == 4
    assert all(r.code == 200 for r in replies)  # drained, not dropped
    assert stats["responses"] == 4


# ---------------------------------------------------------------------------
# client retry


def test_retry_delay_schedule_and_retry_after_floor():
    client = ServeClient(
        max_retries=5, backoff_seconds=0.25, multiplier=2.0,
        max_backoff_seconds=1.0, jitter=0.0,
    )
    assert client._retry_delay(1, None) == 0.25
    assert client._retry_delay(2, None) == 0.5
    assert client._retry_delay(3, None) == 1.0   # capped
    assert client._retry_delay(4, None) == 1.0
    assert client._retry_delay(1, 0.8) == 0.8    # Retry-After raises it


def test_retry_jitter_is_seeded_and_bounded():
    a = ServeClient(max_retries=1, jitter=0.1, retry_seed=7)
    b = ServeClient(max_retries=1, jitter=0.1, retry_seed=7)
    delays_a = [a._retry_delay(1, None) for _ in range(5)]
    delays_b = [b._retry_delay(1, None) for _ in range(5)]
    assert delays_a == delays_b  # same seed, same jitter sequence
    for delay in delays_a:
        assert 0.9 * 0.25 <= delay <= 1.1 * 0.25


def test_client_retries_429_until_success():
    replies = [
        ServeReply(code=429, json={"error": "full"},
                   headers={"retry-after": "0.01"}),
        ServeReply(code=429, json={"error": "full"},
                   headers={"retry-after": "0.01"}),
        ServeReply(code=200, json={"status": "SATISFIABLE"}),
    ]

    async def scenario():
        client = ServeClient(
            max_retries=3, backoff_seconds=0.01, jitter=0.0
        )

        async def fake_call(method, path, payload=None):
            return replies.pop(0)

        client._call = fake_call  # type: ignore[assignment]
        return await client.solve("p cnf 1 1\n1 0\n")

    reply = asyncio.run(scenario())
    assert reply.code == 200
    assert not replies  # all three attempts consumed


def test_client_retry_budget_exhaustion_returns_last_429():
    async def scenario():
        client = ServeClient(
            max_retries=1, backoff_seconds=0.01, jitter=0.0
        )

        async def fake_call(method, path, payload=None):
            return ServeReply(code=429, json={"error": "full"})

        client._call = fake_call  # type: ignore[assignment]
        return await client.solve("p cnf 1 1\n1 0\n")

    reply = asyncio.run(scenario())
    assert reply.code == 429


def test_connection_reset_retry_resumes_from_journal(tmp_path):
    """A lost reply is retried and answered from the journal, idempotently."""
    cnf = random_ksat(12, 40, seed=3)

    async def scenario():
        service = SolveService(
            None,
            ServeConfig(
                max_batch=2,
                flush_window=0.02,
                default_max_conflicts=2000,
                journal=str(tmp_path / "journal.jsonl"),
            ),
        )
        server, _ = await start_service(service)
        host, port = bound_address(server)
        client = ServeClient(
            host, port, max_retries=2, backoff_seconds=0.01, jitter=0.0
        )
        real_call = client._call
        dropped = {"count": 0}

        async def lossy_call(method, path, payload=None):
            reply = await real_call(method, path, payload)
            if dropped["count"] == 0:
                # The server answered, but the reply is lost on the
                # wire: exactly the case where blind re-submission
                # would double-solve without the journal.
                dropped["count"] += 1
                raise ConnectionResetError("reply lost in transit")
            return reply

        client._call = lossy_call  # type: ignore[assignment]
        reply = await client.solve(to_dimacs(cnf), max_conflicts=2000)
        retries = client.retries
        server.close()
        await server.wait_closed()
        await service.stop(drain=True)
        return reply, retries, dropped["count"]

    reply, retries, drops = asyncio.run(scenario())
    assert drops == 1 and retries == 1
    assert reply.code in (200, 504)
    assert reply.json["resumed"] is True  # second solve came from disk
    assert reply.json["status"] in (
        "SATISFIABLE", "UNSATISFIABLE", "UNKNOWN", "TIMEOUT"
    )


def test_client_raises_after_transport_retries_exhausted():
    async def scenario():
        client = ServeClient(
            max_retries=1, backoff_seconds=0.01, jitter=0.0
        )

        async def dead_call(method, path, payload=None):
            raise ConnectionResetError("service gone")

        client._call = dead_call  # type: ignore[assignment]
        try:
            await client.solve("p cnf 1 1\n1 0\n")
        except ConnectionResetError:
            return client.retries
        return None

    retries = asyncio.run(scenario())
    assert retries == 1  # one retry, then the error surfaced


# ---------------------------------------------------------------------------
# service-level breaker integration


def test_service_stats_expose_breaker_and_resilience_counters():
    async def scenario():
        service = SolveService(
            _model(),
            ServeConfig(
                max_batch=2,
                flush_window=0.02,
                default_max_conflicts=500,
                breaker=BreakerConfig(),
            ),
        )
        await service.start()
        request = service.submit(random_ksat(10, 30, seed=0))
        await service.wait(request.id)
        stats = service.stats()
        await service.stop(drain=True)
        return stats

    stats = asyncio.run(scenario())
    assert stats["breaker"]["state"] == "CLOSED"
    for key in ("degraded", "shed", "deadline_missed", "inference_failures"):
        assert key in stats
