"""Tests for the cardinality-constraint encodings."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.cnf import CNF
from repro.cnf.encodings import at_least_k, at_most_k, at_most_one, exactly_k
from repro.solver import Solver, Status


def count_models_projected(cnf, num_inputs):
    """Count satisfying assignments projected onto the first variables."""
    models = set()
    for bits in itertools.product([False, True], repeat=num_inputs):
        assumptions = [
            (i + 1) if value else -(i + 1) for i, value in enumerate(bits)
        ]
        result = Solver(cnf, ).solve(assumptions=assumptions)
        if result.status is Status.SATISFIABLE:
            models.add(bits)
    return models


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3)])
    def test_exactly_the_right_assignments(self, n, k):
        literals = list(range(1, n + 1))
        clauses, _ = at_most_k(literals, k, n + 1)
        cnf = CNF(clauses, num_vars=n)
        models = count_models_projected(cnf, n)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=n)
            if sum(bits) <= k
        }
        assert models == expected

    def test_k_ge_n_is_free(self):
        clauses, nxt = at_most_k([1, 2], 5, 3)
        assert clauses == [] and nxt == 3

    def test_k_zero_forces_all_false(self):
        clauses, _ = at_most_k([1, 2], 0, 3)
        assert sorted(map(tuple, clauses)) == [(-2,), (-1,)]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            at_most_k([1], -1, 2)

    def test_next_var_validation(self):
        with pytest.raises(ValueError):
            at_most_k([1, 5], 1, 3)

    def test_works_on_negative_literals(self):
        # at most 1 of {~1, ~2, ~3} false... i.e. at least 2 of x true.
        clauses, _ = at_most_k([-1, -2, -3], 1, 4)
        cnf = CNF(clauses, num_vars=3)
        models = count_models_projected(cnf, 3)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=3)
            if sum(not b for b in bits) <= 1
        }
        assert models == expected


class TestAtLeastAndExactly:
    @pytest.mark.parametrize("n,k", [(3, 2), (4, 1), (4, 4)])
    def test_at_least(self, n, k):
        literals = list(range(1, n + 1))
        clauses, _ = at_least_k(literals, k, n + 1)
        cnf = CNF(clauses, num_vars=n)
        models = count_models_projected(cnf, n)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=n)
            if sum(bits) >= k
        }
        assert models == expected

    def test_at_least_zero_is_free(self):
        clauses, _ = at_least_k([1, 2], 0, 3)
        assert clauses == []

    def test_at_least_more_than_n_unsat(self):
        clauses, _ = at_least_k([1, 2], 3, 3)
        cnf = CNF(clauses, num_vars=2)
        assert Solver(cnf).solve().status is Status.UNSATISFIABLE

    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (3, 2), (3, 3)])
    def test_exactly(self, n, k):
        literals = list(range(1, n + 1))
        clauses, _ = exactly_k(literals, k, n + 1)
        cnf = CNF(clauses, num_vars=n)
        models = count_models_projected(cnf, n)
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=n)
            if sum(bits) == k
        }
        assert models == expected


class TestAtMostOne:
    def test_pairwise(self):
        clauses = at_most_one([1, 2, 3])
        assert len(clauses) == 3
        cnf = CNF(clauses, num_vars=3)
        models = count_models_projected(cnf, 3)
        assert all(sum(bits) <= 1 for bits in models)
        assert len(models) == 4  # 000, 100, 010, 001


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=6))
def test_property_at_most_k_model_counts(n, k):
    """Projected model count equals the binomial-sum prediction."""
    literals = list(range(1, n + 1))
    clauses, _ = at_most_k(literals, k, n + 1)
    cnf = CNF(clauses, num_vars=n)
    models = count_models_projected(cnf, n)
    expected = sum(
        1
        for bits in itertools.product([False, True], repeat=n)
        if sum(bits) <= k
    )
    assert len(models) == expected
