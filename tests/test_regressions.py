"""Replay the regression corpus through the full oracle bank.

Every entry under ``tests/data/regressions/`` is a minimized DIMACS
formula plus a JSON repro manifest — either a shrunk failure from a
past fuzz campaign or a hand-built soundness trap.  This suite replays
each one through every oracle: a fixed bug that resurfaces, or a trap
that starts firing, fails here with the exact discrepancy attached.

To add an entry, run a campaign with ``--shrink --corpus
tests/data/regressions`` (or call :class:`repro.fuzz.FailureCorpus`
directly for a hand-built case) and commit both files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz import FailureCorpus, load_entry, replay_entry
from repro.fuzz.shrink import CORPUS_FORMAT_VERSION

CORPUS_DIR = Path(__file__).parent / "data" / "regressions"

ENTRIES = FailureCorpus(CORPUS_DIR).entries()


def test_corpus_is_not_empty():
    assert ENTRIES, f"regression corpus missing or empty: {CORPUS_DIR}"


def test_every_formula_has_a_manifest_and_vice_versa():
    cnf_names = {p.stem for p in CORPUS_DIR.glob("*.cnf")}
    manifest_names = {p.stem for p in ENTRIES}
    assert cnf_names == manifest_names


@pytest.mark.parametrize("manifest_path", ENTRIES, ids=lambda p: p.stem)
def test_manifest_schema(manifest_path):
    manifest = json.loads(manifest_path.read_text())
    for field in ("schema", "name", "oracle", "kind", "budget", "replay", "detail"):
        assert field in manifest, f"manifest missing {field!r}"
    assert manifest["schema"] == CORPUS_FORMAT_VERSION
    assert manifest["name"] == manifest_path.stem
    assert "--replay" in manifest["replay"]


@pytest.mark.parametrize("manifest_path", ENTRIES, ids=lambda p: p.stem)
def test_entry_loads_and_matches_manifest(manifest_path):
    manifest, cnf = load_entry(manifest_path)
    assert cnf.num_clauses == manifest["clauses"]
    assert cnf.num_vars == manifest["variables"]


@pytest.mark.parametrize("manifest_path", ENTRIES, ids=lambda p: p.stem)
def test_replay_is_clean(manifest_path):
    """The core contract: no corpus entry may trip any oracle today."""
    found = replay_entry(manifest_path)
    assert found == [], "regression resurfaced:\n" + "\n".join(
        f"  {d.summary()}" for d in found
    )
