#!/usr/bin/env python
"""Service smoke check: amortized inference, correct answers, clean trace.

The CI ``service-smoke`` job (and ``make serve-smoke``) runs this
script.  It starts a real ``repro serve`` process, fires a concurrent
burst of solve requests at it, and asserts the service's load-bearing
claims:

1. every response matches a direct in-process solve of the same
   (formula, policy, budget) — the service changes *where* solving
   happens, never the answer;
2. the burst costs strictly fewer HGT forward passes than requests,
   with at least one batch > 1 — read from the ``serve.batch_size``
   histogram in the traced run, not from the service's own say-so;
3. the SIGINT drain exits 0 and the emitted trace passes the event
   schema.

Exit code 0 on success; any failed assertion prints the evidence and
exits 1.
"""

import asyncio
import json
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.cnf import random_ksat, to_dimacs
from repro.obs import read_trace, validate_traces
from repro.policies import get_policy
from repro.serve import ServeClient
from repro.solver import Solver, SolverConfig

BURST = 8
BUDGET = 20_000


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


async def run_burst(port: int, cnfs):
    client = ServeClient("127.0.0.1", port)
    await client.wait_ready(timeout=30.0)
    return await asyncio.gather(*[
        client.solve(to_dimacs(cnf), max_conflicts=BUDGET) for cnf in cnfs
    ])


def main() -> None:
    trace_dir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-batch", str(BURST), "--flush-window", "0.25",
         "--hidden-dim", "8", "--trace", str(trace_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        if not match:
            proc.kill()
            fail(f"no listen banner: {banner!r} / {proc.stdout.read()}")
        port = int(match.group(1))
        print(f"service up on port {port}")

        cnfs = [random_ksat(12 + i, 4 * (12 + i), seed=i)
                for i in range(BURST)]
        replies = asyncio.run(run_burst(port, cnfs))

        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
        print(out)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    if proc.returncode != 0:
        fail(f"serve exited {proc.returncode}")

    # 1. Responses match direct solves.
    for cnf, reply in zip(cnfs, replies):
        if reply.code != 200:
            fail(f"unexpected HTTP {reply.code}: {reply.json}")
        body = reply.json
        direct = Solver(
            cnf,
            policy=get_policy(body["policy"]),
            config=SolverConfig(core="arena"),
        ).solve(max_conflicts=BUDGET)
        if body["status"] != direct.status.value:
            fail(f"status mismatch: served {body['status']}, "
                 f"direct {direct.status.value}")
        if body["propagations"] != direct.stats.propagations:
            fail(f"effort mismatch: served {body['propagations']} props, "
                 f"direct {direct.stats.propagations}")
    print(f"all {BURST} responses match direct solves")

    # 2. Amortization, from the trace's metric snapshot.
    traces = sorted(trace_dir.glob("serve-*.jsonl"))
    if not traces:
        fail(f"no trace written in {trace_dir}")
    errors = validate_traces(traces)
    if errors:
        fail("trace schema violations: " + "; ".join(errors))
    events, _ = read_trace(traces[0])
    run_end = next(e for e in events if e["event"] == "run-end")
    histogram = run_end["metrics"]["histograms"].get("serve.batch_size")
    if not histogram:
        fail("serve.batch_size histogram missing from the run metrics")
    passes, biggest = histogram["count"], histogram["max"]
    print(f"serve.batch_size: {passes} forward pass(es), "
          f"largest batch {biggest:g} "
          f"(burst of {BURST})")
    if passes >= BURST:
        fail(f"no amortization: {passes} passes for {BURST} requests")
    if biggest <= 1:
        fail("no batch larger than 1 was recorded")

    print("service smoke: OK")
    print(json.dumps({"requests": BURST, "passes": passes,
                      "max_batch": biggest}))


if __name__ == "__main__":
    main()
