#!/usr/bin/env python
"""Incremental-session smoke check: cross-core fuzz + amortized selection.

The CI ``session-smoke`` job (and ``make session-smoke``) runs this
script.  It asserts the two load-bearing claims of the incremental
session layer, with the evidence read back from a traced run rather
than the components' own say-so:

1. **Cross-core differential fuzz** — a seeded 200-step
   add-clause/assumption schedule driven through a warm
   :class:`SolverSession` on *both* engine cores produces, at every
   solve step, identical statuses across cores, a status bit-identical
   to a fresh re-solve of the accumulated formula, and
   failed-assumption cores that are consistent (subset of the
   assumptions, still UNSAT alone).

2. **Drift-gated amortization** — selecting policies for a family of
   50 closely related formula deltas through one
   :class:`SelectorSession` costs *strictly fewer* HGT forward passes
   than instances, proven by counting ``session-select`` trace events
   with ``reused: true`` — and the emitted trace passes the event
   schema.

Exit code 0 on success; any failed assertion prints the evidence and
exits 1.
"""

import json
import random
import sys
import tempfile
from pathlib import Path

from repro.cnf import CNF, random_ksat
from repro.models import NeuroSelect
from repro.obs import read_trace, start_run, validate_traces
from repro.selection import SelectorSession
from repro.solver import Solver, SolverConfig, Status
from repro.solver.session import SolverSession

FUZZ_STEPS = 200
FUZZ_SEED = 20260809
FAMILY_DELTAS = 50
CORES = ("object", "arena")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fuzz_schedule(rng: random.Random, num_vars: int, steps: int):
    """A seeded mixed add/solve schedule over ``num_vars`` variables."""
    schedule = [("solve", [])]
    variables = list(range(1, num_vars + 1))
    for _ in range(steps - 1):
        if rng.random() < 0.35:
            size = rng.randint(1, 3)
            lits = [v if rng.random() < 0.5 else -v
                    for v in rng.sample(variables, size)]
            schedule.append(("add", lits))
        else:
            count = rng.randint(0, 3)
            lits = [v if rng.random() < 0.5 else -v
                    for v in rng.sample(variables, count)]
            schedule.append(("solve", lits))
    return schedule


def fresh_status(cnf: CNF, assumptions, core: str) -> Status:
    return (
        Solver(cnf.copy(), config=SolverConfig(core=core))
        .solve(assumptions=assumptions)
        .status
    )


def run_fuzz(observer) -> dict:
    """Part 1: the seeded 200-step cross-core differential fuzz."""
    rng = random.Random(FUZZ_SEED)
    seed_cnf = random_ksat(12, 30, seed=FUZZ_SEED)
    schedule = fuzz_schedule(rng, seed_cnf.num_vars, FUZZ_STEPS)
    sessions = {
        core: SolverSession(
            seed_cnf.copy(),
            config=SolverConfig(core=core),
            observer=observer,
            session_id=f"smoke-{core}",
        )
        for core in CORES
    }
    accumulated = seed_cnf.copy()
    solves = adds = cores_seen = 0
    for index, (op, lits) in enumerate(schedule):
        if op == "add":
            accumulated.add_clause(lits)
            for session in sessions.values():
                session.add(*lits)
            adds += 1
            continue
        solves += 1
        results = {
            core: session.solve(assumptions=lits)
            for core, session in sessions.items()
        }
        left, right = results["object"].status, results["arena"].status
        if left is not right:
            fail(f"step {index}: cores disagree "
                 f"(object={left.value}, arena={right.value}, "
                 f"assumptions={lits})")
        for core, result in results.items():
            reference = fresh_status(accumulated, lits, core)
            if result.status is not reference:
                fail(f"step {index}: warm {core} session returned "
                     f"{result.status.value}, fresh re-solve says "
                     f"{reference.value} (assumptions={lits})")
            if result.core is not None:
                cores_seen += 1
                if not set(result.core) <= set(lits):
                    fail(f"step {index}: {core} failed core "
                         f"{result.core} not a subset of "
                         f"assumptions {lits}")
                if fresh_status(
                    accumulated, list(result.core), "arena"
                ) is not Status.UNSATISFIABLE:
                    fail(f"step {index}: {core} failed core "
                         f"{result.core} does not keep the formula "
                         f"UNSAT")
    if cores_seen == 0:
        fail("the fuzz schedule never produced a failed-assumption "
             "core — the schedule is not exercising analyzeFinal")
    print(f"fuzz: {solves} solves / {adds} adds over {FUZZ_STEPS} steps, "
          f"both cores bit-identical to fresh re-solves "
          f"({cores_seen} failed cores checked)")
    return {"solves": solves, "adds": adds, "failed_cores": cores_seen}


def run_family(observer) -> dict:
    """Part 2: 50 deltas through one drift-gated selector session."""
    rng = random.Random(FUZZ_SEED + 1)
    base = random_ksat(20, 400, seed=FUZZ_SEED)
    selector = SelectorSession(
        NeuroSelect(hidden_dim=8, seed=0),
        observer=observer,
        session_id="smoke-family",
    )
    drifted = base.copy()
    for _ in range(FAMILY_DELTAS):
        # One extra 3-clause per delta: ~0.25% relative drift per step.
        lits = [v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, base.num_vars + 1), 3)]
        drifted.add_clause(lits)
        selector.select(drifted)
    stats = selector.stats()
    print(f"family: {stats['selections']} selections, "
          f"{stats['inference_passes']} forward pass(es), "
          f"{stats['embedding_reuses']} reuse(s)")
    return stats


def main() -> None:
    trace_dir = Path(tempfile.mkdtemp(prefix="session-smoke-"))
    observer = start_run(
        str(trace_dir), "session-smoke", argv=sys.argv[1:],
        config={"fuzz_steps": FUZZ_STEPS, "deltas": FAMILY_DELTAS},
        metrics=True,
    )
    fuzz = run_fuzz(observer)
    family = run_family(observer)
    observer.finish(exit_code=0)

    # The amortization claim, from the trace — not the selector object.
    traces = sorted(trace_dir.glob("session-smoke-*.jsonl"))
    if not traces:
        fail(f"no trace written in {trace_dir}")
    errors = validate_traces(traces)
    if errors:
        fail("trace schema violations: " + "; ".join(errors))
    events, _ = read_trace(traces[0])
    selects = [e for e in events if e["event"] == "session-select"]
    solve_events = [e for e in events if e["event"] == "session-solve"]
    if len(selects) != FAMILY_DELTAS:
        fail(f"expected {FAMILY_DELTAS} session-select events, "
             f"traced {len(selects)}")
    if not solve_events:
        fail("no session-solve events traced from the fuzz schedule")
    passes = max(e["passes"] for e in selects)
    reused = sum(1 for e in selects if e["reused"])
    if passes >= FAMILY_DELTAS:
        fail(f"no amortization: {passes} forward passes for "
             f"{FAMILY_DELTAS} instances")
    if passes != family["inference_passes"]:
        fail(f"trace disagrees with the selector: {passes} traced "
             f"passes vs {family['inference_passes']} reported")
    if reused == 0:
        fail("no session-select event recorded an embedding reuse")
    print(f"trace: {len(selects)} session-select events, "
          f"{passes} forward pass(es) < {FAMILY_DELTAS} instances, "
          f"{len(solve_events)} session-solve events, schema clean")

    print("session smoke: OK")
    print(json.dumps({
        "fuzz": fuzz,
        "family": {"instances": FAMILY_DELTAS, "passes": passes,
                   "reuses": reused},
    }))


if __name__ == "__main__":
    main()
