#!/usr/bin/env python
"""Run-store smoke check: auto-ingest, query round trip, trend gate.

The CI ``store-query-smoke`` job (and ``make store-smoke``) runs this
script.  It exercises the store's three load-bearing claims end to end,
through the real CLI (``repro.cli.main``), not the library surface:

1. **auto-ingest** — a traced solve and a traced dataset build land in
   ``<trace_dir>/runstore.sqlite`` with no store-specific flags, and
   ``repro query runs --json`` returns both with the right kind,
   status, and exit code;
2. **query round trip** — metrics and trace artifacts recorded during
   the runs are queryable (``repro query metrics`` / ``traces``), and
   ``repro report <run-id>`` resolves a stored run id back to its
   trace;
3. **trend gate** — ingesting the committed ``BENCH_bcp.json`` plus a
   synthetically degraded copy makes ``repro trend
   --check-regression`` exit nonzero, and a healthy copy passes.

Exit code 0 on success; any failed assertion prints the evidence and
exits 1.
"""

import contextlib
import copy
import io
import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.cnf import CNF, write_dimacs_file

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_BASELINE = REPO_ROOT / "BENCH_bcp.json"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(argv, expect=0):
    """Run one CLI invocation, capturing stdout; returns the text."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    if code != expect:
        fail(f"repro {' '.join(argv)} exited {code}, expected {expect}\n"
             f"{buffer.getvalue()}")
    return buffer.getvalue()


def main_smoke() -> None:
    work = Path(tempfile.mkdtemp(prefix="store-smoke-"))
    trace_dir = work / "traces"
    store = str(trace_dir / "runstore.sqlite")

    # -- 1. auto-ingest: traced runs land in the store untouched --------
    cnf_path = work / "smoke.cnf"
    write_dimacs_file(CNF([[1, 2], [-2, 3], [-1, -3]]), cnf_path)
    run_cli(["solve", str(cnf_path), "--trace", str(trace_dir)], expect=10)
    run_cli([
        "dataset", "--out", str(work / "ds.json"),
        "--per-year", "1", "--label-budget", "200",
        "--trace", str(trace_dir),
    ])

    rows = json.loads(run_cli(["query", "runs", "--store", store, "--json"]))
    kinds = {row["kind"]: row for row in rows}
    if set(kinds) != {"solve", "dataset"}:
        fail(f"expected solve+dataset runs in the store, got {sorted(kinds)}")
    if kinds["solve"]["status"] != "ok" or kinds["solve"]["exit_code"] != 10:
        fail(f"solve run misrecorded: {kinds['solve']}")
    if any(not row["commit_ref"] for row in rows):
        fail(f"runs missing commit_ref: {rows}")
    print(f"ok: {len(rows)} traced runs auto-ingested into {store}")

    # -- 2. query round trip: metrics, artifacts, report-by-run-id ------
    metrics = json.loads(run_cli([
        "query", "metrics", "--store", store,
        "--run", kinds["solve"]["run_id"], "--json",
    ]))
    if not any(m["name"] == "events.run-end" for m in metrics):
        fail(f"solve run has no events.run-end metric row: {metrics}")
    traces = json.loads(run_cli([
        "query", "traces", "--store", store, "--role", "all", "--json",
    ]))
    if len(traces) < 4:  # trace + manifest per run
        fail(f"expected >=4 artifacts (trace+manifest x2), got {traces}")
    report = run_cli([
        "report", kinds["solve"]["run_id"], "--store", store,
    ])
    if kinds["solve"]["run_id"] not in report:
        fail("repro report <run-id> did not resolve through the store")
    print(f"ok: query round trip ({len(metrics)} metric rows, "
          f"{len(traces)} artifacts, report resolves run ids)")

    # -- 3. trend gate: degraded copy trips, healthy copy passes --------
    baseline = json.loads(BENCH_BASELINE.read_text())
    baseline.setdefault("created_unix", 1_700_000_000.0)
    degraded = copy.deepcopy(baseline)
    for cell in degraded["bcp"]["workloads"].values():
        cell["arena"]["props_per_sec"] /= 3.0
    degraded["bcp"]["aggregate"]["arena"] /= 3.0
    degraded["created_unix"] = baseline["created_unix"] + 100.0
    healthy = copy.deepcopy(baseline)
    healthy["created_unix"] = baseline["created_unix"] + 100.0
    b_base = work / "BENCH_base.json"
    b_bad = work / "BENCH_degraded.json"
    b_good = work / "BENCH_healthy.json"
    b_base.write_text(json.dumps(baseline))
    b_bad.write_text(json.dumps(degraded))
    b_good.write_text(json.dumps(healthy))

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main([
            "trend", str(b_base), str(b_bad),
            "--store", str(work / "trend-bad.sqlite"), "--check-regression",
        ])
    if code == 0:
        fail("trend gate passed a 3x-degraded arena measurement")
    run_cli([
        "trend", str(b_base), str(b_good),
        "--store", str(work / "trend-good.sqlite"), "--check-regression",
    ])
    print("ok: trend gate trips on a degraded bench result and "
          "passes a healthy one")
    print("store smoke passed")


if __name__ == "__main__":
    main_smoke()
